//! [`ActiveSet`]: the incrementally-maintained set of runnable processes.
//!
//! `Driver::run_schedule` used to rebuild a sorted `Vec<usize>` of active
//! pids on every step — an `O(n)` scan per primitive that capped gated
//! executions at a few thousand processes. The driver now maintains this
//! set incrementally (insert on submit, remove on completion/crash), and
//! schedulers query it through operations that stay cheap at 10⁵–10⁶
//! pids:
//!
//! * `contains` / `len` — O(1) (dense index),
//! * `pick(i)` — O(1) uniform access for randomized policies,
//! * `min` / `next_after` — O(log₆₄ n) via a hierarchical bitmap, giving
//!   round-robin its sorted cyclic order without a scan,
//! * `insert` / `remove` — O(log₆₄ n).
//!
//! The structure is a classic sparse-set (unordered dense vector plus a
//! position index) fused with a 64-ary summary-bitmap tree over pid
//! space; the dense half serves O(1) sampling, the bitmap half serves
//! ordered queries.

/// Sentinel in the position index: pid not present.
const ABSENT: u32 = u32::MAX;

/// A set of pids from `0..capacity`, supporting O(1) membership and
/// sampling plus O(log₆₄ n) ordered queries. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ActiveSet {
    capacity: usize,
    /// Members in insertion-churn order (swap-remove on deletion).
    dense: Vec<u32>,
    /// pid → index into `dense`, or [`ABSENT`].
    pos: Vec<u32>,
    /// `levels[0]` is the membership bitmap over pid space; bit `i` of
    /// `levels[l]` (flat indexing) is set iff word `i` of `levels[l-1]`
    /// is non-zero. The top level is a single word.
    levels: Vec<Vec<u64>>,
}

fn words_for(bits: usize) -> usize {
    bits.div_ceil(64).max(1)
}

impl ActiveSet {
    /// An empty set over pids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity as u64 <= u64::from(u32::MAX), "capacity too large");
        let mut levels = Vec::new();
        let mut words = words_for(capacity);
        loop {
            levels.push(vec![0u64; words]);
            if words == 1 {
                break;
            }
            words = words_for(words);
        }
        ActiveSet {
            capacity,
            dense: Vec::new(),
            pos: vec![ABSENT; capacity],
            levels,
        }
    }

    /// Largest pid the set can hold, plus one.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.dense.len()
    }

    /// `true` if no members.
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }

    /// O(1) membership test.
    pub fn contains(&self, pid: usize) -> bool {
        pid < self.capacity && self.pos[pid] != ABSENT
    }

    /// The `i`-th member in the set's internal (unordered but
    /// deterministic) enumeration, for uniform sampling.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn pick(&self, i: usize) -> usize {
        self.dense[i] as usize
    }

    /// Insert `pid`; no-op if already present.
    pub fn insert(&mut self, pid: usize) {
        assert!(pid < self.capacity, "pid {pid} out of range");
        if self.pos[pid] != ABSENT {
            return;
        }
        self.pos[pid] = self.dense.len() as u32;
        self.dense.push(pid as u32);
        let mut idx = pid;
        for level in &mut self.levels {
            let word = &mut level[idx / 64];
            let was = *word;
            *word |= 1 << (idx % 64);
            if was != 0 {
                break; // summaries above are already set
            }
            idx /= 64;
        }
    }

    /// Remove `pid`; no-op if absent.
    pub fn remove(&mut self, pid: usize) {
        if pid >= self.capacity || self.pos[pid] == ABSENT {
            return;
        }
        let at = self.pos[pid] as usize;
        let last = self.dense.pop().expect("non-empty");
        if last as usize != pid {
            self.dense[at] = last;
            self.pos[last as usize] = at as u32;
        }
        self.pos[pid] = ABSENT;
        let mut idx = pid;
        for level in &mut self.levels {
            let word = &mut level[idx / 64];
            *word &= !(1 << (idx % 64));
            if *word != 0 {
                break; // word still summarized as non-empty above
            }
            idx /= 64;
        }
    }

    /// Smallest member, if any.
    pub fn min(&self) -> Option<usize> {
        let top = self.levels.len() - 1;
        if self.levels[top][0] == 0 {
            return None;
        }
        let mut idx = 0usize;
        for level in self.levels.iter().rev() {
            let w = level[idx];
            debug_assert!(w != 0, "summary bit set over an empty word");
            idx = idx * 64 + w.trailing_zeros() as usize;
        }
        Some(idx)
    }

    /// Smallest member strictly greater than `after`, if any. `after`
    /// need not be a member.
    pub fn next_after(&self, after: usize) -> Option<usize> {
        let idx = self.succ(0, after)?;
        Some(idx)
    }

    /// Smallest flat bit index strictly greater than `x` set at `level`.
    fn succ(&self, level: usize, x: usize) -> Option<usize> {
        let bits = &self.levels[level];
        let word_idx = x / 64;
        if word_idx < bits.len() {
            let b = x % 64;
            let rem = if b == 63 {
                0
            } else {
                bits[word_idx] >> (b + 1) << (b + 1)
            };
            if rem != 0 {
                return Some(word_idx * 64 + rem.trailing_zeros() as usize);
            }
        }
        if level + 1 == self.levels.len() {
            return None;
        }
        // Next non-empty word of this level, strictly after `word_idx`.
        let w = self.succ(level + 1, word_idx)?;
        Some(w * 64 + self.levels[level][w].trailing_zeros() as usize)
    }

    /// Members in ascending order (walks the membership bitmap; O(n/64 +
    /// len) — for observability APIs, not the scheduling hot path).
    pub fn iter_sorted(&self) -> impl Iterator<Item = usize> + '_ {
        self.levels[0].iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

impl FromIterator<usize> for ActiveSet {
    /// Build a set sized to the largest pid — a convenience for tests.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let pids: Vec<usize> = iter.into_iter().collect();
        let cap = pids.iter().max().map_or(1, |&m| m + 1);
        let mut set = ActiveSet::new(cap);
        for pid in pids {
            set.insert(pid);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ActiveSet::new(200);
        assert!(s.is_empty());
        for pid in [0, 5, 64, 65, 130, 199] {
            s.insert(pid);
        }
        s.insert(5); // idempotent
        assert_eq!(s.len(), 6);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        s.remove(64);
        s.remove(64); // idempotent
        assert!(!s.contains(64));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn ordered_queries() {
        let s: ActiveSet = [3usize, 70, 140, 141].into_iter().collect();
        assert_eq!(s.min(), Some(3));
        assert_eq!(s.next_after(0), Some(3));
        assert_eq!(s.next_after(3), Some(70));
        assert_eq!(s.next_after(70), Some(140));
        assert_eq!(s.next_after(140), Some(141));
        assert_eq!(s.next_after(141), None);
        assert_eq!(s.iter_sorted().collect::<Vec<_>>(), vec![3, 70, 140, 141]);
    }

    #[test]
    fn empty_set_queries() {
        let s = ActiveSet::new(1_000);
        assert_eq!(s.min(), None);
        assert_eq!(s.next_after(0), None);
        assert_eq!(s.iter_sorted().count(), 0);
    }

    #[test]
    fn large_sparse_set_round_trips() {
        // Three bitmap levels (10⁵ pids) with scattered members.
        let n = 100_000;
        let mut s = ActiveSet::new(n);
        let members: Vec<usize> = (0..n).step_by(997).collect();
        for &pid in &members {
            s.insert(pid);
        }
        assert_eq!(s.iter_sorted().collect::<Vec<_>>(), members);
        // Successor chain visits every member in order.
        let mut walked = vec![s.min().unwrap()];
        while let Some(next) = s.next_after(*walked.last().unwrap()) {
            walked.push(next);
        }
        assert_eq!(walked, members);
        // Remove every other member; queries stay consistent.
        for &pid in members.iter().step_by(2) {
            s.remove(pid);
        }
        let expect: Vec<usize> = members.iter().copied().skip(1).step_by(2).collect();
        assert_eq!(s.iter_sorted().collect::<Vec<_>>(), expect);
        assert_eq!(s.len(), expect.len());
    }

    #[test]
    fn word_boundary_64_65() {
        // The summary bitmap's word boundary: members straddling bits
        // 63/64 must survive inserts, removes and ordered queries on
        // both sides of the word edge.
        let mut s = ActiveSet::new(130);
        for pid in [63, 64, 65] {
            s.insert(pid);
        }
        assert_eq!(s.iter_sorted().collect::<Vec<_>>(), vec![63, 64, 65]);
        assert_eq!(s.next_after(63), Some(64), "crosses the word edge");
        assert_eq!(s.next_after(64), Some(65), "within the second word");
        s.remove(64);
        assert_eq!(
            s.next_after(63),
            Some(65),
            "successor skips the removed first bit of word 1"
        );
        s.remove(65);
        // Word 1 is now empty: its summary bit must be cleared, or the
        // successor query would descend into an empty word.
        assert_eq!(s.next_after(63), None);
        assert_eq!(s.min(), Some(63));
        s.remove(63);
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
    }

    #[test]
    fn remove_then_readd_same_pid() {
        // Re-adding a pid after removal must restore both halves of the
        // structure: dense-index membership and the bitmap path.
        let mut s = ActiveSet::new(200);
        for pid in [7, 64, 130] {
            s.insert(pid);
        }
        s.remove(64);
        assert!(!s.contains(64));
        s.insert(64);
        assert!(s.contains(64));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter_sorted().collect::<Vec<_>>(), vec![7, 64, 130]);
        assert_eq!(s.next_after(7), Some(64));
        // The dense half still enumerates exactly the members.
        let mut picks: Vec<usize> = (0..s.len()).map(|i| s.pick(i)).collect();
        picks.sort_unstable();
        assert_eq!(picks, vec![7, 64, 130]);
        // Churn the same pid repeatedly: no duplicates, no leaks.
        for _ in 0..10 {
            s.remove(64);
            s.insert(64);
        }
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn dense_pick_enumerates_members() {
        let mut s = ActiveSet::new(50);
        for pid in 0..50 {
            s.insert(pid);
        }
        s.remove(10);
        s.remove(49);
        let mut seen: Vec<usize> = (0..s.len()).map(|i| s.pick(i)).collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..50).filter(|&p| p != 10 && p != 49).collect();
        assert_eq!(seen, expect);
    }
}
