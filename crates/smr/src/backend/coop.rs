//! [`CoopBackend`]: cooperative execution of virtual processes.
//!
//! Drives N processes as [`OpTask`] state machines on the controller
//! thread. There are no worker threads and no gate: granting a step *is*
//! polling the parked task once, so the per-step cost drops from a
//! cross-thread condvar handshake to one indirect call — which is what
//! lets gated executions scale from ~10³ OS threads to 10⁵–10⁶ virtual
//! processes (see `exp_scale`).
//!
//! ## Stable-point invariant
//!
//! The backend keeps every process at a quiesced stable point *between*
//! controller calls: either parked (a primed task waiting before its
//! next primitive) or idle with an empty queue. It does so by advancing
//! eagerly — on submit and after each completion it dequeues the next
//! operation, announces its invocation, and runs its priming poll;
//! zero-primitive operations complete immediately, exactly like a
//! zero-step closure running ahead of the gate on a worker thread. This
//! makes [`quiesce`](ExecBackend::quiesce) a no-op and crash/suspend
//! cuts deterministic by construction.
//!
//! ## Contract enforcement
//!
//! The worker-thread backend *physically* serializes primitives through
//! the gate; here nothing stops a buggy task from applying two
//! primitives in one poll, so the backend watches the process's step
//! counter around every poll and panics on a violation (a primitive
//! applied while priming, ≠ 1 primitive on a granted step). Violations
//! are bugs in the task, not schedule-dependent behavior.

use super::{ExecBackend, StepOutcome};
use crate::history::{OpRecord, OpSpec};
use crate::runtime::Runtime;
use crate::task::{Op, OpTask, Poll};
use std::collections::VecDeque;
use std::sync::Arc;

/// A primed task parked immediately before its next primitive.
struct Parked {
    spec: OpSpec,
    task: Box<dyn OpTask>,
    inv: u64,
    /// Process's cumulative step count at invocation.
    steps_at_inv: u64,
}

#[derive(Default)]
struct Slot {
    /// Operations submitted but not yet started.
    queue: VecDeque<(OpSpec, Box<dyn OpTask>)>,
    /// The in-flight operation, if any.
    parked: Option<Parked>,
}

/// The cooperative (virtual-process) execution backend. See the [module
/// docs](self).
pub struct CoopBackend {
    runtime: Arc<Runtime>,
    slots: Vec<Slot>,
    /// Produced events awaiting a drain.
    events: Vec<OpRecord>,
    /// Contract asserts off: violations run on, to be diagnosed by the
    /// poll-discipline analysis pass instead of a panic.
    lenient: bool,
}

impl CoopBackend {
    /// A backend for the virtual processes of a coop runtime.
    ///
    /// # Panics
    /// Panics unless `runtime` was built by [`Runtime::coop`].
    pub fn new(runtime: Arc<Runtime>) -> Self {
        CoopBackend::build(runtime, false)
    }

    /// Like [`new`](CoopBackend::new), but with the poll-contract
    /// asserts disabled: a task applying the wrong number of primitives
    /// per poll executes anyway, so an attached
    /// [`Analyzer`](crate::analysis::Analyzer) can observe and report
    /// the violation with full context instead of dying on the assert.
    pub fn new_lenient(runtime: Arc<Runtime>) -> Self {
        CoopBackend::build(runtime, true)
    }

    fn build(runtime: Arc<Runtime>, lenient: bool) -> Self {
        assert!(
            runtime.is_coop(),
            "CoopBackend requires a coop runtime (Runtime::coop)"
        );
        let n = runtime.n();
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, Slot::default);
        CoopBackend {
            runtime,
            slots,
            events: Vec::new(),
            lenient,
        }
    }

    /// Start queued operations until one parks at a primitive or the
    /// queue runs dry: announce the invocation, run the priming poll,
    /// and complete zero-primitive operations on the spot.
    fn advance(&mut self, pid: usize) {
        debug_assert!(self.slots[pid].parked.is_none());
        while let Some((spec, mut task)) = self.slots[pid].queue.pop_front() {
            let inv = self.runtime.ticket();
            let steps_at_inv = self.runtime.steps_of(pid);
            self.runtime.trace_invoke(pid, spec.kind(0).label(), inv);
            self.events.push(OpRecord {
                pid,
                kind: spec.kind(0),
                inv,
                resp: None,
                steps: steps_at_inv,
            });
            let ctx = self.runtime.ctx(pid);
            let polled = task.poll(&ctx);
            assert!(
                self.lenient || self.runtime.steps_of(pid) == steps_at_inv,
                "OpTask contract violation (pid {pid}, op {:?}): the priming poll \
                 applied a primitive before any step was granted",
                spec.kind(0).label(),
            );
            match polled {
                Poll::Ready(ret) => {
                    let resp = self.runtime.ticket();
                    self.runtime.trace_complete(pid, spec.kind(0).label(), resp);
                    self.events.push(OpRecord {
                        pid,
                        kind: spec.kind(ret),
                        inv,
                        resp: Some(resp),
                        steps: self.runtime.steps_of(pid) - steps_at_inv,
                    });
                }
                Poll::Pending => {
                    self.slots[pid].parked = Some(Parked {
                        spec,
                        task,
                        inv,
                        steps_at_inv,
                    });
                    return;
                }
            }
        }
    }
}

impl ExecBackend for CoopBackend {
    fn submit(&mut self, pid: usize, spec: OpSpec, op: Op) {
        let task = match op {
            Op::Task(task) => task,
            Op::Call(_) => panic!(
                "closure ops cannot be suspended cooperatively; \
                 submit an OpTask (Driver::submit_task) or use the thread backend"
            ),
        };
        self.slots[pid].queue.push_back((spec, task));
        if self.slots[pid].parked.is_none() {
            self.advance(pid);
        }
    }

    fn step(&mut self, pid: usize, expected_ops: u64) -> StepOutcome {
        let Some(parked) = self.slots[pid].parked.as_mut() else {
            debug_assert!(self.slots[pid].queue.is_empty());
            let _ = expected_ops; // completion is structural here
            return StepOutcome::Completed;
        };
        let before = self.runtime.steps_of(pid);
        self.runtime.trace_grant(pid);
        let ctx = self.runtime.ctx(pid);
        let polled = parked.task.poll(&ctx);
        let applied = self.runtime.steps_of(pid) - before;
        assert!(
            self.lenient || applied == 1,
            "OpTask contract violation (pid {pid}, op {:?}): a granted step must \
             apply exactly one primitive, got {applied}",
            parked.spec.kind(0).label(),
        );
        if let Poll::Ready(ret) = polled {
            let parked = self.slots[pid].parked.take().expect("just polled");
            let resp = self.runtime.ticket();
            self.runtime
                .trace_complete(pid, parked.spec.kind(0).label(), resp);
            self.events.push(OpRecord {
                pid,
                kind: parked.spec.kind(ret),
                inv: parked.inv,
                resp: Some(resp),
                steps: self.runtime.steps_of(pid) - parked.steps_at_inv,
            });
            self.advance(pid);
        }
        StepOutcome::Stepped
    }

    fn quiesce(&mut self, _pid: usize, _expected_ops: u64) {
        // Always at a stable point: `advance` runs eagerly on submit and
        // after every completion, so parked/idle state and the event
        // buffer are already the deterministic cut a quiesce produces.
    }

    fn drain(&mut self, sink: &mut dyn FnMut(OpRecord)) {
        for rec in self.events.drain(..) {
            sink(rec);
        }
    }

    fn wait_event(&mut self) -> OpRecord {
        unreachable!("coop runtimes are gated; free-running wait is a thread-backend operation");
    }

    fn shutdown(&mut self) {
        // Mirror the thread backend's teardown: parked operations and
        // everything queued behind them (crashed processes included) run
        // to completion ungated, so shared memory ends as if every
        // submitted operation finished. Records are discarded — and so is
        // the analysis stream: teardown polls happen outside the modelled
        // execution, so the sink is sealed before the first one.
        self.runtime.seal_analysis();
        for pid in 0..self.slots.len() {
            let ctx = self.runtime.ctx(pid);
            let slot = &mut self.slots[pid];
            let parked = slot.parked.take().map(|p| p.task);
            let rest = std::mem::take(&mut slot.queue);
            for mut task in parked.into_iter().chain(rest.into_iter().map(|(_, t)| t)) {
                while task.poll(&ctx).is_pending() {}
            }
        }
    }
}

impl Drop for CoopBackend {
    fn drop(&mut self) {
        // During a panic unwind (e.g. a contract violation) the tasks
        // are suspect; re-polling them could panic again and abort.
        // Leaking their remaining effects is fine then.
        if !std::thread::panicking() {
            self.shutdown();
        }
    }
}
