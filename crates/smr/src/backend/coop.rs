//! [`CoopBackend`]: cooperative execution of virtual processes.
//!
//! Drives N processes as [`OpTask`](crate::OpTask) state machines on the
//! controller thread. There are no worker threads and no gate: granting
//! a step *is* polling the parked task once, so the per-step cost drops
//! from a cross-thread condvar handshake to one indirect call — which is
//! what lets gated executions scale from ~10³ OS threads to 10⁵–10⁶
//! virtual processes (see `exp_scale`).
//!
//! ## Memory layout
//!
//! At 10⁶ processes the hot loop is memory-bound, so the backend avoids
//! pointer-chasing structurally:
//!
//! * **Struct-of-arrays parked state.** The per-process in-flight op is
//!   not a boxed struct in a `Vec<Slot>`; it is split across dense
//!   parallel arrays (`parked_data`/`parked_poll`/`parked_spec`/…), so
//!   the poll loop streams through exactly the fields it touches.
//! * **Arena-allocated task state.** Submitted tasks arrive as
//!   [`ErasedTask`]s (a thin payload pointer plus poll/drop shims);
//!   [`submit`](ExecBackend::submit) moves the payload bytes into a
//!   bump arena ([`TaskArena`]) and releases the per-task heap
//!   allocation. Completed tasks are dropped in place; the bump cursor
//!   rewinds whenever the live count hits zero (a generation boundary —
//!   e.g. the quiesced point between `run_schedule` batches), reusing
//!   chunk memory instead of round-tripping 10⁶ boxes through the
//!   global allocator.
//! * **Slab-backed submission queues.** Ops queued behind an in-flight
//!   one live in one shared slab of intrusive list nodes (`u32` links),
//!   not per-process `VecDeque` heap buffers.
//!
//! ## Gated and free-running modes
//!
//! A backend over a [`Runtime::coop`] runtime is **gated**: the
//! controller grants one primitive at a time ([`step`](ExecBackend::step))
//! under a scheduler, with crash/suspension semantics identical to the
//! gated thread backend.
//!
//! A backend over a [`Runtime::coop_free`] runtime is **free-running**
//! ([`CoopBackend::new_free`], `Driver::coop_free`): there is no grant
//! discipline — [`wait_event`](ExecBackend::wait_event) batch-polls
//! every runnable task in rounds until completions surface, and
//! `Driver::wait_all` drains them. Like the free-running thread
//! backend, no invocation announcements are emitted (completions only),
//! and mid-run crash/suspension is unsupported. The batch order is
//! ascending submission order by default, or a seeded per-round shuffle
//! ([`CoopBackend::new_free_seeded`]) — both deterministic, single
//! controller thread, and therefore replayable.
//!
//! ## Stable-point invariant
//!
//! The backend keeps every process at a quiesced stable point *between*
//! controller calls: either parked (a primed task waiting before its
//! next primitive) or idle with an empty queue. It does so by advancing
//! eagerly — on submit and after each completion it dequeues the next
//! operation, announces its invocation (gated mode), and runs its
//! priming poll; zero-primitive operations complete immediately,
//! exactly like a zero-step closure running ahead of the gate on a
//! worker thread. This makes [`quiesce`](ExecBackend::quiesce) a no-op
//! and crash/suspend cuts deterministic by construction.
//!
//! ## Contract enforcement
//!
//! The worker-thread backend *physically* serializes primitives through
//! the gate; here nothing stops a buggy task from applying two
//! primitives in one poll, so the backend watches the process's step
//! counter around every poll and panics on a violation (a primitive
//! applied while priming, ≠ 1 primitive on a granted step). Violations
//! are bugs in the task, not schedule-dependent behavior.
//!
//! [`Runtime::coop`]: crate::Runtime::coop
//! [`Runtime::coop_free`]: crate::Runtime::coop_free

use super::{ExecBackend, StepOutcome};
use crate::history::{OpRecord, OpSpec};
use crate::runtime::{Mode, Runtime};
use crate::task::{DropFn, ErasedTask, Op, Poll, PollFn};
use crate::ProcCtx;
use std::alloc::Layout;
use std::collections::VecDeque;
use std::ptr::NonNull;
use std::sync::Arc;

/// Null link in the queue slab and in `qhead`/`qtail`.
const NIL: u32 = u32::MAX;

/// The backend's registered metrics, resolved once per backend (the
/// handles are `&'static`, so the poll loop pays one relaxed flag load
/// plus one sharded `fetch_add` per event, nothing per-event from the
/// registry).
struct CoopMetrics {
    /// Every task poll: priming polls in `advance`, granted polls in
    /// `step`, batch polls in `sweep_one`.
    polls: &'static obs::Counter,
    /// `quiesce` calls (structurally free in this backend — the count
    /// is the interesting signal).
    quiesces: &'static obs::Counter,
    /// Runnable-queue depth, sampled once per completed batch round.
    runnable_depth: &'static obs::Histogram,
}

impl CoopMetrics {
    fn new() -> CoopMetrics {
        CoopMetrics {
            polls: obs::counter(obs::names::SUB_COOP, obs::names::COOP_POLLS),
            quiesces: obs::counter(obs::names::SUB_COOP, obs::names::COOP_QUIESCES),
            runnable_depth: obs::histogram(
                obs::names::SUB_COOP,
                obs::names::COOP_RUNNABLE_DEPTH,
                2,
                4,
            ),
        }
    }
}

/// Bump-arena chunk size; large enough that 10⁶ small task states fit
/// in a few dozen chunks.
const CHUNK_SIZE: usize = 1 << 20;
/// Chunk base alignment (a cache line covers every ordinary task type).
const CHUNK_ALIGN: usize = 64;

struct Chunk {
    ptr: NonNull<u8>,
    layout: Layout,
}

/// Bump arena owning every live task payload.
///
/// Payloads are moved in at submit ([`TaskArena::install`]) and dropped
/// in place at completion ([`TaskArena::retire`]); individual slots are
/// never freed. Instead, when the live count returns to zero — a
/// runtime *generation* boundary — the bump cursor rewinds to the first
/// chunk and the memory is reused wholesale.
#[derive(Default)]
struct TaskArena {
    chunks: Vec<Chunk>,
    /// Chunk the bump cursor is in.
    at: usize,
    /// Bump offset within `chunks[at]`.
    offset: usize,
    /// Installed-but-not-retired payloads.
    live: usize,
}

impl TaskArena {
    /// Carve `layout` bytes out of the current chunk, growing the chunk
    /// list on demand. `layout.size()` must be non-zero.
    fn alloc(&mut self, layout: Layout) -> NonNull<u8> {
        debug_assert!(layout.size() > 0);
        loop {
            if let Some(chunk) = self.chunks.get(self.at) {
                let base = chunk.ptr.as_ptr() as usize;
                let aligned = (base + self.offset).next_multiple_of(layout.align());
                if aligned + layout.size() <= base + chunk.layout.size() {
                    let off = aligned - base;
                    self.offset = off + layout.size();
                    // SAFETY: `off + layout.size()` is within the chunk.
                    return unsafe { NonNull::new_unchecked(chunk.ptr.as_ptr().add(off)) };
                }
                self.at += 1;
                self.offset = 0;
                continue;
            }
            let chunk_layout = Layout::from_size_align(
                layout.size().max(CHUNK_SIZE),
                layout.align().max(CHUNK_ALIGN),
            )
            .expect("task arena chunk layout");
            // SAFETY: the layout has non-zero size.
            let ptr = unsafe { std::alloc::alloc(chunk_layout) };
            let ptr =
                NonNull::new(ptr).unwrap_or_else(|| std::alloc::handle_alloc_error(chunk_layout));
            // Chunk growth is rare (one per MiB of task state), so the
            // registry lookup here costs nothing measurable; chunks are
            // reused across generations and only freed at drop, which
            // is what the gauge tracks.
            obs::gauge(obs::names::SUB_COOP, obs::names::COOP_ARENA_BYTES)
                .add(i64::try_from(chunk_layout.size()).unwrap_or(i64::MAX));
            self.chunks.push(Chunk {
                ptr,
                layout: chunk_layout,
            });
        }
    }

    /// Move an erased task's payload into the arena, releasing its
    /// original heap allocation. The task has never been polled at this
    /// point, so the relocation is an ordinary move. Zero-sized
    /// payloads keep their (dangling) pointer.
    fn install(&mut self, task: ErasedTask) -> (NonNull<u8>, PollFn, DropFn) {
        let (src, layout, poll, dropper) = task.into_raw_parts();
        self.live += 1;
        if layout.size() == 0 {
            return (src, poll, dropper);
        }
        let dst = self.alloc(layout);
        // SAFETY: `src` is the exclusively-owned payload allocation of
        // `layout`; `dst` is a fresh arena slot of the same layout. The
        // bytes move, then the original allocation is released without
        // dropping the value.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_ptr(), layout.size());
            std::alloc::dealloc(src.as_ptr(), layout);
        }
        (dst, poll, dropper)
    }

    /// Drop a finished task in place. Its bytes are reclaimed at the
    /// next generation reset.
    ///
    /// # Safety
    /// `data`/`dropper` must come from [`install`](TaskArena::install)
    /// and the task must never be used again.
    unsafe fn retire(&mut self, data: NonNull<u8>, dropper: DropFn) {
        // SAFETY: per the contract above, `data` is the live payload
        // `dropper` was erased from.
        unsafe { dropper(data) };
        self.live -= 1;
        if self.live == 0 {
            self.at = 0;
            self.offset = 0;
        }
    }
}

impl Drop for TaskArena {
    fn drop(&mut self) {
        // The backend retires every live task before the arena drops
        // (teardown or panic path), so only raw chunk memory remains.
        for chunk in self.chunks.drain(..) {
            obs::gauge(obs::names::SUB_COOP, obs::names::COOP_ARENA_BYTES)
                .sub(i64::try_from(chunk.layout.size()).unwrap_or(i64::MAX));
            // SAFETY: allocated in `alloc` with exactly this layout.
            unsafe { std::alloc::dealloc(chunk.ptr.as_ptr(), chunk.layout) };
        }
    }
}

/// A queued (submitted, not yet started) op in the shared slab.
/// `data: None` marks a free-list node.
struct QNode {
    spec: OpSpec,
    data: Option<NonNull<u8>>,
    poll: PollFn,
    dropper: DropFn,
    next: u32,
}

/// Placeholder shims for idle slots in the parallel arrays; never
/// called (the `parked_data` entry is the presence discriminant).
unsafe fn idle_poll(_data: NonNull<u8>, _ctx: &ProcCtx) -> Poll<u128> {
    unreachable!("polled an idle slot")
}
unsafe fn idle_drop(_data: NonNull<u8>) {
    unreachable!("dropped an idle slot")
}

/// Fisher–Yates driven by xorshift64 — deterministic per seed, cheap
/// enough to rerun every batch round.
fn shuffle(list: &mut [u32], state: &mut u64) {
    for i in (1..list.len()).rev() {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        list.swap(i, (x % (i as u64 + 1)) as usize);
    }
}

/// The cooperative (virtual-process) execution backend. See the [module
/// docs](self).
pub struct CoopBackend {
    runtime: Arc<Runtime>,
    /// `false` for the free-running mode ([`Runtime::coop_free`]).
    ///
    /// [`Runtime::coop_free`]: crate::Runtime::coop_free
    gated: bool,
    /// Contract asserts off: violations run on, to be diagnosed by the
    /// poll-discipline analysis pass instead of a panic.
    lenient: bool,

    // Struct-of-arrays in-flight state, indexed by pid. `parked_data`
    // is the presence discriminant; the other arrays hold the matching
    // op's shims and record fields (stale while idle).
    parked_data: Vec<Option<NonNull<u8>>>,
    parked_poll: Vec<PollFn>,
    parked_drop: Vec<DropFn>,
    parked_spec: Vec<OpSpec>,
    parked_inv: Vec<u64>,
    /// Process's cumulative step count at the parked op's invocation.
    parked_steps_at_inv: Vec<u64>,

    /// Per-pid FIFO of not-yet-started ops: head/tail indices into the
    /// shared `nodes` slab (`NIL`-terminated).
    qhead: Vec<u32>,
    qtail: Vec<u32>,
    nodes: Vec<QNode>,
    free_node: u32,

    arena: TaskArena,
    /// Produced events awaiting a drain (or a `wait_event` pop).
    events: VecDeque<OpRecord>,

    // Free-running mode only: the batch-poll round state.
    /// Pids with a parked task, in batch order. Entries in
    /// `[0, sweep_keep)` were polled this round and are still parked;
    /// `[sweep_pos, len)` have not been polled yet; the gap is garbage
    /// compacted away when the round completes.
    runnable: Vec<u32>,
    in_runnable: Vec<bool>,
    sweep_pos: usize,
    sweep_keep: usize,
    /// A round whose batch order has not been (re)shuffled yet.
    round_fresh: bool,
    /// Seeded xorshift64 state for shuffled batch order; `None` keeps
    /// submission order.
    batch_rng: Option<u64>,

    metrics: CoopMetrics,
}

// SAFETY: every raw pointer (arena chunks, installed payloads, slab
// links) points into memory the backend exclusively owns, and the
// erased payloads are `OpTask + Send`; moving the backend between
// threads moves that ownership wholesale.
unsafe impl Send for CoopBackend {}

impl CoopBackend {
    /// A gated backend for the virtual processes of a coop runtime.
    ///
    /// # Panics
    /// Panics unless `runtime` was built by [`Runtime::coop`]
    /// (free-running coop runtimes take [`new_free`](CoopBackend::new_free)).
    ///
    /// [`Runtime::coop`]: crate::Runtime::coop
    pub fn new(runtime: Arc<Runtime>) -> Self {
        assert_eq!(
            runtime.mode(),
            Mode::Gated,
            "CoopBackend::new requires a gated coop runtime (Runtime::coop); \
             free-running coop runtimes take CoopBackend::new_free"
        );
        CoopBackend::build(runtime, false, None)
    }

    /// Like [`new`](CoopBackend::new), but with the poll-contract
    /// asserts disabled: a task applying the wrong number of primitives
    /// per poll executes anyway, so an attached
    /// [`Analyzer`](crate::analysis::Analyzer) can observe and report
    /// the violation with full context instead of dying on the assert.
    pub fn new_lenient(runtime: Arc<Runtime>) -> Self {
        assert_eq!(
            runtime.mode(),
            Mode::Gated,
            "CoopBackend::new_lenient requires a gated coop runtime (Runtime::coop)"
        );
        CoopBackend::build(runtime, true, None)
    }

    /// A **free-running** backend over a [`Runtime::coop_free`]
    /// runtime: no grant discipline — `wait_event` batch-polls every
    /// runnable task in rounds, in ascending submission order. See the
    /// [module docs](self).
    ///
    /// # Panics
    /// Panics unless `runtime` was built by [`Runtime::coop_free`].
    ///
    /// [`Runtime::coop_free`]: crate::Runtime::coop_free
    pub fn new_free(runtime: Arc<Runtime>) -> Self {
        assert_eq!(
            runtime.mode(),
            Mode::FreeRunning,
            "CoopBackend::new_free requires a free-running coop runtime (Runtime::coop_free)"
        );
        CoopBackend::build(runtime, false, None)
    }

    /// Like [`new_free`](CoopBackend::new_free), but each batch round
    /// polls in a seeded pseudo-random order instead of submission
    /// order. Still fully deterministic: the same seed replays the same
    /// execution.
    pub fn new_free_seeded(runtime: Arc<Runtime>, seed: u64) -> Self {
        assert_eq!(
            runtime.mode(),
            Mode::FreeRunning,
            "CoopBackend::new_free_seeded requires a free-running coop runtime (Runtime::coop_free)"
        );
        // xorshift fixed point: state 0 would never leave 0.
        let state = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        CoopBackend::build(runtime, false, Some(state))
    }

    fn build(runtime: Arc<Runtime>, lenient: bool, batch_rng: Option<u64>) -> Self {
        assert!(
            runtime.is_coop(),
            "CoopBackend requires a coop runtime (Runtime::coop / Runtime::coop_free)"
        );
        let n = runtime.n();
        u32::try_from(n).expect("the coop backend indexes processes with u32");
        let gated = runtime.mode() == Mode::Gated;
        CoopBackend {
            gated,
            lenient,
            parked_data: vec![None; n],
            parked_poll: vec![idle_poll as PollFn; n],
            parked_drop: vec![idle_drop as DropFn; n],
            parked_spec: vec![OpSpec::read(); n],
            parked_inv: vec![0; n],
            parked_steps_at_inv: vec![0; n],
            qhead: vec![NIL; n],
            qtail: vec![NIL; n],
            nodes: Vec::new(),
            free_node: NIL,
            arena: TaskArena::default(),
            events: VecDeque::new(),
            runnable: Vec::new(),
            in_runnable: if gated { Vec::new() } else { vec![false; n] },
            sweep_pos: 0,
            sweep_keep: 0,
            round_fresh: true,
            batch_rng,
            metrics: CoopMetrics::new(),
            runtime,
        }
    }

    fn push_queued(
        &mut self,
        pid: usize,
        spec: OpSpec,
        data: NonNull<u8>,
        poll: PollFn,
        dropper: DropFn,
    ) {
        let node = QNode {
            spec,
            data: Some(data),
            poll,
            dropper,
            next: NIL,
        };
        let idx = if self.free_node != NIL {
            let idx = self.free_node;
            self.free_node = self.nodes[idx as usize].next;
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("queue slab index fits u32");
            self.nodes.push(node);
            idx
        };
        if self.qtail[pid] == NIL {
            self.qhead[pid] = idx;
        } else {
            self.nodes[self.qtail[pid] as usize].next = idx;
        }
        self.qtail[pid] = idx;
    }

    fn pop_queued(&mut self, pid: usize) -> Option<(OpSpec, NonNull<u8>, PollFn, DropFn)> {
        let idx = self.qhead[pid];
        if idx == NIL {
            return None;
        }
        let node = &mut self.nodes[idx as usize];
        let data = node.data.take().expect("queued node holds a task");
        let out = (node.spec, data, node.poll, node.dropper);
        self.qhead[pid] = node.next;
        if self.qhead[pid] == NIL {
            self.qtail[pid] = NIL;
        }
        node.next = self.free_node;
        self.free_node = idx;
        Some(out)
    }

    /// Start queued operations until one parks at a primitive or the
    /// queue runs dry: announce the invocation (gated mode), run the
    /// priming poll, and complete zero-primitive operations on the spot.
    fn advance(&mut self, pid: usize) {
        debug_assert!(self.parked_data[pid].is_none());
        while let Some((spec, data, poll, dropper)) = self.pop_queued(pid) {
            let inv = self.runtime.ticket();
            let steps_at_inv = self.runtime.steps_of(pid);
            if self.gated {
                // Free-running mode sends no invocation announcements,
                // mirroring the thread backend (nothing can be
                // suspended, so pending records would be pure noise).
                self.runtime.trace_invoke(pid, spec.kind(0), inv);
                self.events.push_back(OpRecord {
                    pid,
                    kind: spec.kind(0),
                    inv,
                    resp: None,
                    steps: steps_at_inv,
                });
            }
            let ctx = self.runtime.ctx(pid);
            self.metrics.polls.inc();
            // SAFETY: `data` is the live, exclusively-owned task
            // installed for this op.
            let polled = unsafe { poll(data, &ctx) };
            assert!(
                self.lenient || self.runtime.steps_of(pid) == steps_at_inv,
                "OpTask contract violation (pid {pid}, op {:?}): the priming poll \
                 applied a primitive before any step was granted",
                spec.kind(0).label(),
            );
            match polled {
                Poll::Ready(ret) => {
                    let resp = self.runtime.ticket();
                    if self.gated {
                        self.runtime.trace_complete(pid, spec.kind(ret), resp);
                    }
                    self.events.push_back(OpRecord {
                        pid,
                        kind: spec.kind(ret),
                        inv,
                        resp: Some(resp),
                        steps: self.runtime.steps_of(pid) - steps_at_inv,
                    });
                    // SAFETY: the op completed; never polled again.
                    unsafe { self.arena.retire(data, dropper) };
                }
                Poll::Pending => {
                    self.parked_data[pid] = Some(data);
                    self.parked_poll[pid] = poll;
                    self.parked_drop[pid] = dropper;
                    self.parked_spec[pid] = spec;
                    self.parked_inv[pid] = inv;
                    self.parked_steps_at_inv[pid] = steps_at_inv;
                    return;
                }
            }
        }
    }

    /// Record the parked op's completion and retire its task.
    fn complete_parked(&mut self, pid: usize, data: NonNull<u8>, ret: u128) {
        self.parked_data[pid] = None;
        let spec = self.parked_spec[pid];
        let resp = self.runtime.ticket();
        if self.gated {
            self.runtime.trace_complete(pid, spec.kind(ret), resp);
        }
        self.events.push_back(OpRecord {
            pid,
            kind: spec.kind(ret),
            inv: self.parked_inv[pid],
            resp: Some(resp),
            steps: self.runtime.steps_of(pid) - self.parked_steps_at_inv[pid],
        });
        let dropper = self.parked_drop[pid];
        // SAFETY: the op completed; the task is never polled again.
        unsafe { self.arena.retire(data, dropper) };
    }

    /// Free-running mode: poll the next runnable task in batch order.
    /// Rounds are resumable — `wait_event` consumes one record at a
    /// time, and pausing mid-round keeps the event buffer O(1) instead
    /// of O(n) while preserving the exact poll order of full rounds.
    fn sweep_one(&mut self) {
        if self.sweep_pos >= self.runnable.len() {
            // Round complete: compact away pids that went idle (the
            // survivors keep their relative order) and rewind.
            self.runnable.truncate(self.sweep_keep);
            self.metrics
                .runnable_depth
                .record(self.runnable.len() as u64);
            self.sweep_pos = 0;
            self.sweep_keep = 0;
            self.round_fresh = true;
            assert!(
                !self.runnable.is_empty(),
                "wait_event(): nothing runnable and no buffered event — \
                 every submitted operation has completed"
            );
        }
        if self.round_fresh {
            self.round_fresh = false;
            if let Some(state) = &mut self.batch_rng {
                shuffle(&mut self.runnable[self.sweep_pos..], state);
            }
        }
        let pid = self.runnable[self.sweep_pos] as usize;
        self.sweep_pos += 1;
        self.metrics.polls.inc();
        let Some(data) = self.parked_data[pid] else {
            // Defensive: a stale entry (should not occur — entries are
            // compacted the round their pid goes idle).
            self.in_runnable[pid] = false;
            return;
        };
        let before = self.runtime.steps_of(pid);
        let ctx = self.runtime.ctx(pid);
        // SAFETY: the parked task is live and exclusively ours.
        let polled = unsafe { (self.parked_poll[pid])(data, &ctx) };
        let applied = self.runtime.steps_of(pid) - before;
        assert!(
            self.lenient || applied == 1,
            "OpTask contract violation (pid {pid}, op {:?}): a granted step must \
             apply exactly one primitive, got {applied}",
            self.parked_spec[pid].kind(0).label(),
        );
        if let Poll::Ready(ret) = polled {
            self.complete_parked(pid, data, ret);
            self.advance(pid);
        }
        if self.parked_data[pid].is_some() {
            self.runnable[self.sweep_keep] = pid as u32;
            self.sweep_keep += 1;
        } else {
            self.in_runnable[pid] = false;
        }
    }
}

impl ExecBackend for CoopBackend {
    fn submit(&mut self, pid: usize, spec: OpSpec, op: Op) {
        let task = match op {
            Op::Task(task) => task,
            Op::Call(_) => panic!(
                "closure ops cannot be suspended cooperatively; \
                 submit an OpTask (Driver::submit_task) or use the thread backend"
            ),
        };
        let (data, poll, dropper) = self.arena.install(task);
        self.push_queued(pid, spec, data, poll, dropper);
        if self.parked_data[pid].is_none() {
            self.advance(pid);
        }
        if !self.gated && self.parked_data[pid].is_some() && !self.in_runnable[pid] {
            self.in_runnable[pid] = true;
            self.runnable.push(pid as u32);
        }
    }

    fn step(&mut self, pid: usize, expected_ops: u64) -> StepOutcome {
        assert!(self.gated, "step() requires a gated runtime");
        let Some(data) = self.parked_data[pid] else {
            debug_assert!(self.qhead[pid] == NIL);
            let _ = expected_ops; // completion is structural here
            return StepOutcome::Completed;
        };
        let before = self.runtime.steps_of(pid);
        self.runtime.trace_grant(pid);
        self.metrics.polls.inc();
        let ctx = self.runtime.ctx(pid);
        // SAFETY: the parked task is live and exclusively ours.
        let polled = unsafe { (self.parked_poll[pid])(data, &ctx) };
        let applied = self.runtime.steps_of(pid) - before;
        assert!(
            self.lenient || applied == 1,
            "OpTask contract violation (pid {pid}, op {:?}): a granted step must \
             apply exactly one primitive, got {applied}",
            self.parked_spec[pid].kind(0).label(),
        );
        if let Poll::Ready(ret) = polled {
            self.complete_parked(pid, data, ret);
            self.advance(pid);
        }
        StepOutcome::Stepped
    }

    fn quiesce(&mut self, _pid: usize, _expected_ops: u64) {
        // Always at a stable point: `advance` runs eagerly on submit and
        // after every completion, so parked/idle state and the event
        // buffer are already the deterministic cut a quiesce produces.
        self.metrics.quiesces.inc();
    }

    fn drain(&mut self, sink: &mut dyn FnMut(OpRecord)) {
        for rec in self.events.drain(..) {
            sink(rec);
        }
    }

    fn wait_event(&mut self) -> OpRecord {
        assert!(
            !self.gated,
            "wait_event() requires a free-running runtime (gated executions are stepped)"
        );
        while self.events.is_empty() {
            self.sweep_one();
        }
        self.events.pop_front().expect("just produced an event")
    }

    fn shutdown(&mut self) {
        // Mirror the thread backend's teardown: parked operations and
        // everything queued behind them (crashed processes included) run
        // to completion ungated, so shared memory ends as if every
        // submitted operation finished. Records are discarded — and so is
        // the analysis stream: teardown polls happen outside the modelled
        // execution, so the sink is sealed before the first one.
        self.runtime.seal_analysis();
        for pid in 0..self.parked_data.len() {
            let ctx = self.runtime.ctx(pid);
            if let Some(data) = self.parked_data[pid].take() {
                let poll = self.parked_poll[pid];
                let dropper = self.parked_drop[pid];
                // SAFETY: the parked task is live; retired right after
                // its final poll.
                unsafe {
                    while poll(data, &ctx).is_pending() {}
                    self.arena.retire(data, dropper);
                }
            }
            while let Some((_spec, data, poll, dropper)) = self.pop_queued(pid) {
                // SAFETY: as above; queued tasks start from their
                // priming poll.
                unsafe {
                    while poll(data, &ctx).is_pending() {}
                    self.arena.retire(data, dropper);
                }
            }
        }
        self.runnable.clear();
        self.in_runnable.iter_mut().for_each(|f| *f = false);
        self.sweep_pos = 0;
        self.sweep_keep = 0;
        self.round_fresh = true;
    }
}

impl Drop for CoopBackend {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // During a panic unwind (e.g. a contract violation) the
            // tasks are suspect; re-polling them could panic again and
            // abort. Run their destructors without polling so owned
            // resources are released before the arena frees its chunks.
            for pid in 0..self.parked_data.len() {
                if let Some(data) = self.parked_data[pid].take() {
                    let dropper = self.parked_drop[pid];
                    // SAFETY: live parked task, dropped exactly once.
                    unsafe { self.arena.retire(data, dropper) };
                }
                while let Some((_spec, data, _poll, dropper)) = self.pop_queued(pid) {
                    // SAFETY: live queued task, dropped exactly once.
                    unsafe { self.arena.retire(data, dropper) };
                }
            }
        } else {
            self.shutdown();
        }
    }
}
