//! Execution backends: how submitted operations actually run.
//!
//! The [`Driver`](crate::Driver) is generic over an [`ExecBackend`],
//! which owns operation execution and event production; the driver keeps
//! the bookkeeping (histories, crash flags, the active set) identical
//! across backends:
//!
//! * [`ThreadBackend`] — the original machinery: one worker thread per
//!   process, primitives park at the gate in gated mode. Runs closure
//!   ops and [`OpTask`](crate::OpTask)s, supports free-running mode,
//!   native speed, but tops out around 10³ processes (OS threads plus a
//!   cross-thread gate handshake per step).
//! * [`CoopBackend`] — N *virtual* processes as resumable task state
//!   machines on the controller thread: no worker threads, no parking,
//!   one indirect call per step. [`OpTask`] ops only, scales to
//!   10⁵–10⁶ processes. Gated ([`Runtime::coop`]) or free-running
//!   ([`Runtime::coop_free`]: `wait_event` batch-polls runnable tasks
//!   in deterministic rounds instead of granting steps).
//!
//! [`Runtime::coop`]: crate::Runtime::coop
//! [`Runtime::coop_free`]: crate::Runtime::coop_free
//!
//! Both backends speak the same event protocol: in gated mode an
//! operation's start is announced with a pending [`OpRecord`]
//! (`resp = None`, `steps` = the process's cumulative step count at
//! invocation) and its completion recorded with a full one; the driver
//! turns those into histories, crash pendings and snapshots, so
//! crash/suspend/quiesce semantics are backend-independent (verified by
//! `tests/backend_equivalence`).

mod coop;
mod thread;

pub use coop::CoopBackend;
pub use thread::ThreadBackend;

use crate::history::{OpRecord, OpSpec};
use crate::task::Op;

/// Result of advancing one process by one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One primitive was executed to completion.
    Stepped,
    /// All operations submitted to this process have completed; no step
    /// was taken.
    Completed,
}

/// An operation executor the [`Driver`](crate::Driver) delegates to.
///
/// `expected_ops` parameters carry the driver's submission count for the
/// process, which is how a backend distinguishes "idle, everything done"
/// from "idle, next op not yet started".
pub trait ExecBackend {
    /// Hand `op` to process `pid`. In gated mode it must not apply any
    /// primitive until granted a step; in free-running mode it starts
    /// immediately.
    fn submit(&mut self, pid: usize, spec: OpSpec, op: Op);

    /// Gated mode: advance `pid` by one primitive, or report that all
    /// `expected_ops` of its operations completed.
    fn step(&mut self, pid: usize, expected_ops: u64) -> StepOutcome;

    /// Gated mode: bring `pid` to a stable point — parked immediately
    /// before a primitive, or idle with all `expected_ops` operations
    /// finished — with every event it will ever emit without further
    /// grants already drainable.
    fn quiesce(&mut self, pid: usize, expected_ops: u64);

    /// Drain produced events (invocation announcements and completions)
    /// into `sink`, in production order per process.
    fn drain(&mut self, sink: &mut dyn FnMut(OpRecord));

    /// Free-running mode only: block until the next event is available
    /// and return it.
    fn wait_event(&mut self) -> OpRecord;

    /// Tear down: release anything parked and let every in-flight and
    /// queued operation run to completion ungated (a dropped driver must
    /// leave shared memory as if all submitted operations finished —
    /// events emitted during shutdown are discarded).
    fn shutdown(&mut self);
}
