//! [`ThreadBackend`]: one worker thread per process.
//!
//! This is the original driver machinery, split out behind
//! [`ExecBackend`]. Workers block on a command channel; in gated mode
//! every primitive they apply parks at the gate until the controller
//! grants it ([`Gate::grant`](crate::gate::Gate)), and each operation's
//! invocation is announced before its closure/task runs so crashes and
//! suspensions surface pending records. Closure ops run natively;
//! [`OpTask`](crate::OpTask) ops are adapted by polling to completion on
//! the worker — their primitives park individually exactly like a
//! closure's, so task-form and closure-form operations are
//! indistinguishable through the gate.

use super::{ExecBackend, StepOutcome};
use crate::gate::GrantOutcome;
use crate::history::{OpRecord, OpSpec};
use crate::runtime::{Mode, Runtime};
use crate::task::{Op, Poll};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Cmd {
    Op { spec: OpSpec, op: Op },
    Stop,
}

/// The thread-per-process execution backend. See the [module
/// docs](self).
pub struct ThreadBackend {
    runtime: Arc<Runtime>,
    cmd_tx: Vec<Sender<Cmd>>,
    evt_rx: Receiver<OpRecord>,
    workers: Vec<JoinHandle<()>>,
    /// Controller-side grants — each one is a full cross-thread condvar
    /// handshake with a parked worker, the cost that caps this backend
    /// at ~10³ processes (`exp_scale`); counting them is what makes
    /// that story visible in a snapshot next to coop poll counts.
    gate_waits: &'static obs::Counter,
}

impl ThreadBackend {
    /// Spawn one worker per process of `runtime`.
    ///
    /// # Panics
    /// Panics on a coop runtime — its virtual processes have no gate for
    /// workers to park at; use [`Driver::coop`](crate::Driver::coop).
    pub fn new(runtime: Arc<Runtime>) -> Self {
        assert!(
            !runtime.is_coop(),
            "the thread backend cannot drive a coop runtime; \
             use Driver::coop (or Runtime::gated/free_running)"
        );
        let n = runtime.n();
        let (evt_tx, evt_rx) = unbounded();
        let mut cmd_tx = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for pid in 0..n {
            let (tx, rx) = unbounded::<Cmd>();
            cmd_tx.push(tx);
            let rt = runtime.clone();
            let etx = evt_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("smr-worker-{pid}"))
                    .spawn(move || worker_loop(rt, pid, rx, etx))
                    .expect("spawn worker"),
            );
        }
        ThreadBackend {
            runtime,
            cmd_tx,
            evt_rx,
            workers,
            gate_waits: obs::counter(obs::names::SUB_THREAD, obs::names::THREAD_GATE_WAITS),
        }
    }
}

impl ExecBackend for ThreadBackend {
    fn submit(&mut self, pid: usize, spec: OpSpec, op: Op) {
        self.cmd_tx[pid]
            .send(Cmd::Op { spec, op })
            .expect("worker alive");
    }

    fn step(&mut self, pid: usize, expected_ops: u64) -> StepOutcome {
        let gate = self
            .runtime
            .gate
            .as_ref()
            .expect("step() requires a gated runtime");
        self.gate_waits.inc();
        match gate.grant(pid, expected_ops) {
            GrantOutcome::Stepped => StepOutcome::Stepped,
            GrantOutcome::Completed => StepOutcome::Completed,
        }
    }

    fn quiesce(&mut self, pid: usize, expected_ops: u64) {
        let gate = self
            .runtime
            .gate
            .as_ref()
            .expect("quiesce requires a gated runtime");
        gate.quiesce(pid, expected_ops);
    }

    fn drain(&mut self, sink: &mut dyn FnMut(OpRecord)) {
        while let Ok(rec) = self.evt_rx.try_recv() {
            sink(rec);
        }
    }

    fn wait_event(&mut self) -> OpRecord {
        debug_assert_eq!(self.runtime.mode(), Mode::FreeRunning);
        self.evt_rx.recv().expect("workers alive")
    }

    fn shutdown(&mut self) {
        // Whatever still runs after this point is teardown, not the
        // modelled execution: cut the analysis stream first.
        self.runtime.seal_analysis();
        for tx in &self.cmd_tx {
            let _ = tx.send(Cmd::Stop);
        }
        // Unblock any worker parked at the gate mid-operation; it will
        // finish its operation free-running, then see Stop.
        self.runtime.release_gate();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadBackend {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown();
        }
    }
}

fn worker_loop(runtime: Arc<Runtime>, pid: usize, rx: Receiver<Cmd>, tx: Sender<OpRecord>) {
    let ctx = runtime.ctx(pid);
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Stop => break,
            Cmd::Op { spec, op } => {
                if let Some(gate) = &runtime.gate {
                    gate.op_started(pid);
                }
                let inv = runtime.ticket();
                let steps_before = ctx.steps_taken();
                // Gated mode only: announce the invocation before
                // executing, so if this process crashes or is suspended
                // mid-operation the controller still learns the op
                // started (its effects are optional for linearization).
                // The announcement's kind carries the spec's
                // invocation-time payload with a zero result, and its
                // `steps` field the process's cumulative step count at
                // invocation; `Driver::crash`/`history_snapshot` rewrite
                // the latter to the steps the op itself performed before
                // surfacing the record. Free-running runtimes cannot
                // suspend processes, so the announcement would be pure
                // channel overhead there.
                if runtime.gate.is_some() {
                    runtime.trace_invoke(pid, spec.kind(0), inv);
                    let _ = tx.send(OpRecord {
                        pid,
                        kind: spec.kind(0),
                        inv,
                        resp: None,
                        steps: steps_before,
                    });
                }
                let ret = match op {
                    Op::Call(f) => f(&ctx),
                    // Tasks park per-primitive inside `ctx.step` like any
                    // closure; the worker just keeps polling.
                    Op::Task(mut task) => loop {
                        if let Poll::Ready(v) = task.poll(&ctx) {
                            break v;
                        }
                    },
                };
                let steps = ctx.steps_taken() - steps_before;
                let resp = runtime.ticket();
                if runtime.gate.is_some() {
                    runtime.trace_complete(pid, spec.kind(ret), resp);
                }
                // The event must be in the channel before `op_finished` is
                // signalled, so a controller that observes completion can
                // always drain the corresponding record.
                let _ = tx.send(OpRecord {
                    pid,
                    kind: spec.kind(ret),
                    inv,
                    resp: Some(resp),
                    steps,
                });
                if let Some(gate) = &runtime.gate {
                    gate.op_finished(pid);
                }
            }
        }
    }
}
