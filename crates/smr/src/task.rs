//! [`OpTask`]: poll-style resumable operations.
//!
//! A closure submitted to the driver owns its whole operation: once it
//! starts, the only way to pause it between primitives is to park the
//! OS thread running it — which is exactly what the gate does, and why
//! the thread backend needs one worker thread per process. An `OpTask`
//! is the same operation written as an explicit state machine, so a
//! single controller thread can interleave thousands of them without
//! parking anything: the coop backend advances a task by one primitive
//! per [`poll`](OpTask::poll) call.
//!
//! ## The poll contract
//!
//! A task mirrors how a gated worker executes a closure: the worker
//! runs local computation freely and parks immediately **before** each
//! primitive, applying it only when granted a step. Concretely:
//!
//! * The **first** poll is the *priming* poll: run local computation up
//!   to (but not including) the first primitive and return
//!   [`Poll::Pending`] **without applying any primitive**. If the
//!   operation applies no primitives at all, return `Poll::Ready`
//!   (still zero primitives) — such operations complete without ever
//!   being granted a step, exactly like a zero-step closure.
//! * Every **subsequent** poll is a *granted step*: apply exactly one
//!   primitive (through the [`ProcCtx`] methods, so it is counted and
//!   traced), continue local computation, and stop at the next
//!   primitive boundary (`Poll::Pending`) or at completion
//!   (`Poll::Ready(result)` — the completing poll still applies its one
//!   primitive).
//!
//! The coop backend *enforces* this contract by watching the process's
//! step counter around every poll and panics on a violation (a primitive
//! applied while priming, more than one primitive per granted step, or a
//! step that made no progress). The thread backend runs tasks on a
//! worker thread where each primitive parks at the gate individually, so
//! a task that is honest about the contract executes identically on
//! both backends — that equivalence is what `tests/backend_equivalence`
//! checks.
//!
//! [`ProcCtx`]: crate::ProcCtx

use crate::ProcCtx;
use std::alloc::Layout;
use std::ptr::NonNull;

pub use std::task::Poll;

/// A resumable operation: one primitive per granted poll. See the
/// [module docs](self) for the exact contract.
pub trait OpTask: Send {
    /// Advance the operation. The first call primes (no primitive);
    /// each later call applies exactly one primitive.
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128>;
}

/// Shim applying one [`OpTask::poll`] to a type-erased payload.
pub(crate) type PollFn = unsafe fn(NonNull<u8>, &ProcCtx) -> Poll<u128>;
/// Shim dropping a type-erased payload in place (no deallocation).
pub(crate) type DropFn = unsafe fn(NonNull<u8>);

/// A type-erased [`OpTask`] behind a *thin* pointer: the payload lives
/// in its own heap allocation and the vtable is two explicit shims
/// captured where the concrete type is still known
/// ([`ErasedTask::new`]).
///
/// Unlike `Box<dyn OpTask>`, the payload pointer and the shims travel
/// separately, so the payload bytes can be relocated (it has never been
/// polled when the backend takes it, so the relocation is an ordinary
/// move) and dropped in place without a deallocation — which is what
/// lets the coop backend move 10⁶ task states into a bump arena and
/// keep the shims in dense side arrays (see `backend::coop`).
pub struct ErasedTask {
    data: NonNull<u8>,
    layout: Layout,
    poll: PollFn,
    dropper: DropFn,
}

// SAFETY: the payload is some `T: OpTask + 'static` (`OpTask: Send`)
// owned exclusively through `data`; sending the handle sends that
// ownership.
unsafe impl Send for ErasedTask {}

impl ErasedTask {
    /// Erase `task`, moving it to its own heap allocation.
    pub fn new<T: OpTask + 'static>(task: T) -> Self {
        unsafe fn poll_shim<T: OpTask>(data: NonNull<u8>, ctx: &ProcCtx) -> Poll<u128> {
            // SAFETY: caller passes the exclusively-owned, live `T`
            // this shim was erased from.
            unsafe { data.cast::<T>().as_mut() }.poll(ctx)
        }
        unsafe fn drop_shim<T>(data: NonNull<u8>) {
            // SAFETY: as in `poll_shim`; the value is dead afterwards.
            unsafe { std::ptr::drop_in_place(data.cast::<T>().as_ptr()) }
        }
        let data = NonNull::new(Box::into_raw(Box::new(task)))
            .expect("Box allocations are non-null")
            .cast::<u8>();
        ErasedTask {
            data,
            layout: Layout::new::<T>(),
            poll: poll_shim::<T>,
            dropper: drop_shim::<T>,
        }
    }

    /// Advance the erased task (see [`OpTask::poll`]).
    pub(crate) fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        // SAFETY: `data` is the live payload these shims were built for.
        unsafe { (self.poll)(self.data, ctx) }
    }

    /// Decompose into payload pointer, its layout, and the two shims.
    /// The caller takes over the payload's heap allocation (none for
    /// zero-sized payloads: the pointer is dangling, as from `Box`).
    pub(crate) fn into_raw_parts(self) -> (NonNull<u8>, Layout, PollFn, DropFn) {
        let this = std::mem::ManuallyDrop::new(self);
        (this.data, this.layout, this.poll, this.dropper)
    }
}

impl Drop for ErasedTask {
    fn drop(&mut self) {
        // SAFETY: sole owner of the payload and (for non-ZSTs) its
        // allocation, both created in `new`.
        unsafe {
            (self.dropper)(self.data);
            if self.layout.size() > 0 {
                std::alloc::dealloc(self.data.as_ptr(), self.layout);
            }
        }
    }
}

impl std::fmt::Debug for ErasedTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErasedTask")
            .field("layout", &self.layout)
            .finish_non_exhaustive()
    }
}

/// An operation in either submission form: a one-shot closure (thread
/// backend only — it cannot be suspended cooperatively) or a resumable
/// [`OpTask`] (either backend).
pub enum Op {
    /// A closure executed start-to-finish on a worker thread.
    Call(Box<dyn FnOnce(&ProcCtx) -> u128 + Send + 'static>),
    /// A poll-style resumable task, type-erased.
    Task(ErasedTask),
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Op::Call(_) => "Op::Call",
            Op::Task(_) => "Op::Task",
        })
    }
}

/// Adapter: a **zero-primitive** closure as an [`OpTask`], completing on
/// the priming poll. This is the task form of oracle/reference
/// operations (e.g. the lock-based test objects), which apply no
/// primitives; closures that *do* apply primitives cannot be adapted —
/// they must be rewritten as state machines to run cooperatively.
pub struct ImmediateOp<F>(Option<F>);

impl<F> ImmediateOp<F>
where
    F: FnOnce(&ProcCtx) -> u128 + Send + 'static,
{
    /// Wrap a zero-primitive closure.
    pub fn new(f: F) -> Self {
        ImmediateOp(Some(f))
    }
}

impl<F> OpTask for ImmediateOp<F>
where
    F: FnOnce(&ProcCtx) -> u128 + Send + 'static,
{
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let f = self.0.take().expect("polled after completion");
        Poll::Ready(f(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn immediate_op_completes_on_priming_poll() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let mut op = ImmediateOp::new(|_ctx| 17);
        assert_eq!(op.poll(&ctx), Poll::Ready(17));
        assert_eq!(ctx.steps_taken(), 0);
    }
}
