//! [`OpTask`]: poll-style resumable operations.
//!
//! A closure submitted to the driver owns its whole operation: once it
//! starts, the only way to pause it between primitives is to park the
//! OS thread running it — which is exactly what the gate does, and why
//! the thread backend needs one worker thread per process. An `OpTask`
//! is the same operation written as an explicit state machine, so a
//! single controller thread can interleave thousands of them without
//! parking anything: the coop backend advances a task by one primitive
//! per [`poll`](OpTask::poll) call.
//!
//! ## The poll contract
//!
//! A task mirrors how a gated worker executes a closure: the worker
//! runs local computation freely and parks immediately **before** each
//! primitive, applying it only when granted a step. Concretely:
//!
//! * The **first** poll is the *priming* poll: run local computation up
//!   to (but not including) the first primitive and return
//!   [`Poll::Pending`] **without applying any primitive**. If the
//!   operation applies no primitives at all, return `Poll::Ready`
//!   (still zero primitives) — such operations complete without ever
//!   being granted a step, exactly like a zero-step closure.
//! * Every **subsequent** poll is a *granted step*: apply exactly one
//!   primitive (through the [`ProcCtx`] methods, so it is counted and
//!   traced), continue local computation, and stop at the next
//!   primitive boundary (`Poll::Pending`) or at completion
//!   (`Poll::Ready(result)` — the completing poll still applies its one
//!   primitive).
//!
//! The coop backend *enforces* this contract by watching the process's
//! step counter around every poll and panics on a violation (a primitive
//! applied while priming, more than one primitive per granted step, or a
//! step that made no progress). The thread backend runs tasks on a
//! worker thread where each primitive parks at the gate individually, so
//! a task that is honest about the contract executes identically on
//! both backends — that equivalence is what `tests/backend_equivalence`
//! checks.
//!
//! [`ProcCtx`]: crate::ProcCtx

use crate::ProcCtx;

pub use std::task::Poll;

/// A resumable operation: one primitive per granted poll. See the
/// [module docs](self) for the exact contract.
pub trait OpTask: Send {
    /// Advance the operation. The first call primes (no primitive);
    /// each later call applies exactly one primitive.
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128>;
}

/// An operation in either submission form: a one-shot closure (thread
/// backend only — it cannot be suspended cooperatively) or a resumable
/// [`OpTask`] (either backend).
pub enum Op {
    /// A closure executed start-to-finish on a worker thread.
    Call(Box<dyn FnOnce(&ProcCtx) -> u128 + Send + 'static>),
    /// A poll-style resumable task.
    Task(Box<dyn OpTask + 'static>),
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Op::Call(_) => "Op::Call",
            Op::Task(_) => "Op::Task",
        })
    }
}

/// Adapter: a **zero-primitive** closure as an [`OpTask`], completing on
/// the priming poll. This is the task form of oracle/reference
/// operations (e.g. the lock-based test objects), which apply no
/// primitives; closures that *do* apply primitives cannot be adapted —
/// they must be rewritten as state machines to run cooperatively.
pub struct ImmediateOp<F>(Option<F>);

impl<F> ImmediateOp<F>
where
    F: FnOnce(&ProcCtx) -> u128 + Send + 'static,
{
    /// Wrap a zero-primitive closure.
    pub fn new(f: F) -> Self {
        ImmediateOp(Some(f))
    }
}

impl<F> OpTask for ImmediateOp<F>
where
    F: FnOnce(&ProcCtx) -> u128 + Send + 'static,
{
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let f = self.0.take().expect("polled after completion");
        Poll::Ready(f(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn immediate_op_completes_on_priming_poll() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let mut op = ImmediateOp::new(|_ctx| 17);
        assert_eq!(op.poll(&ctx), Poll::Ready(17));
        assert_eq!(ctx.steps_taken(), 0);
    }
}
