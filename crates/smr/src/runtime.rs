//! The [`Runtime`]: per-process step accounting plus the optional gate.

use crate::analysis::{Analyzer, RunMeta};
use crate::ctx::ProcCtx;
use crate::gate::Gate;
use crate::history::OpKind;
use crate::step::{pad, StepStats};
use crate::trace::{Access, AccessKind, TraceEvent, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Execution mode of a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Primitives run at native speed; only step counters are maintained.
    FreeRunning,
    /// Every primitive is granted individually by a controller, giving
    /// fully deterministic interleavings — either through the gate (the
    /// thread backend parks workers at it) or by cooperative polling
    /// (the coop backend grants a step by polling a task once).
    Gated,
}

/// Per-process step counters. Worker threads hammer these concurrently,
/// so the thread-backed runtimes pad each counter to its own cache line;
/// a coop runtime is driven by a single controller thread over up to
/// 10⁶ virtual processes, where 64-byte padding would multiply resident
/// memory eightfold for no contention benefit — it stores them densely.
enum StepCounters {
    Padded(Vec<pad::CachePadded<AtomicU64>>),
    Dense(Vec<AtomicU64>),
}

impl StepCounters {
    fn at(&self, pid: usize) -> &AtomicU64 {
        match self {
            StepCounters::Padded(v) => &v[pid],
            StepCounters::Dense(v) => &v[pid],
        }
    }

    fn snapshot(&self) -> Vec<u64> {
        // relaxed-ok: statistical reads; exact at gate stable points.
        match self {
            StepCounters::Padded(v) => v.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            StepCounters::Dense(v) => v.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }

    fn total(&self) -> u64 {
        // relaxed-ok: statistical sum; see `snapshot`.
        match self {
            StepCounters::Padded(v) => v.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
            StepCounters::Dense(v) => v.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
        }
    }

    fn reset(&self) {
        // relaxed-ok: callers reset only while the runtime is quiesced.
        match self {
            StepCounters::Padded(v) => v.iter().for_each(|c| c.store(0, Ordering::Relaxed)),
            StepCounters::Dense(v) => v.iter().for_each(|c| c.store(0, Ordering::Relaxed)),
        }
    }
}

/// The shared-memory machine: `n` process slots, each with a step counter,
/// plus a global logical clock used to timestamp operation histories.
///
/// A `Runtime` is cheap to share (`Arc`) and all of its state is
/// thread-safe; per-process *capabilities* are handed out as [`ProcCtx`]
/// values via [`Runtime::ctx`].
pub struct Runtime {
    n: usize,
    mode: Mode,
    /// Gated runtime with no gate: processes are *virtual*, driven
    /// cooperatively on the controller thread (`Driver::coop`).
    coop: bool,
    steps: StepCounters,
    ticket: AtomicU64,
    tracer: Tracer,
    pub(crate) gate: Option<Gate>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("n", &self.n)
            .field("mode", &self.mode)
            .field("coop", &self.coop)
            .field("total_steps", &self.total_steps())
            .finish()
    }
}

impl Runtime {
    /// A free-running runtime for `n` processes.
    pub fn free_running(n: usize) -> Arc<Runtime> {
        Arc::new(Runtime::build(n, Mode::FreeRunning, false))
    }

    /// A gated runtime for `n` processes (deterministic scheduling),
    /// backed by one worker thread per process.
    pub fn gated(n: usize) -> Arc<Runtime> {
        Arc::new(Runtime::build(n, Mode::Gated, false))
    }

    /// A gated runtime whose `n` processes are *virtual*: no worker
    /// threads, no gate — operations must be submitted as
    /// [`OpTask`](crate::OpTask)s and are interleaved cooperatively on
    /// the controller thread (`Driver::coop`). Scales to 10⁵–10⁶
    /// processes where [`gated`](Runtime::gated) tops out around 10³ OS
    /// threads.
    pub fn coop(n: usize) -> Arc<Runtime> {
        Arc::new(Runtime::build(n, Mode::Gated, true))
    }

    /// A **free-running** runtime over *virtual* processes: as
    /// [`coop`](Runtime::coop), operations are submitted as
    /// [`OpTask`](crate::OpTask)s and run on the controller thread —
    /// but with no grant discipline. The backend batch-polls every
    /// runnable task in rounds (`Driver::coop_free`), trading crash and
    /// suspension control for raw throughput: coop cache locality at
    /// free-running speed. Executions are still deterministic (single
    /// thread, fixed batch order).
    pub fn coop_free(n: usize) -> Arc<Runtime> {
        Arc::new(Runtime::build(n, Mode::FreeRunning, true))
    }

    fn build(n: usize, mode: Mode, coop: bool) -> Runtime {
        assert!(n > 0, "a runtime needs at least one process");
        Runtime {
            n,
            mode,
            coop,
            steps: if coop {
                StepCounters::Dense((0..n).map(|_| AtomicU64::new(0)).collect())
            } else {
                StepCounters::Padded(
                    (0..n)
                        .map(|_| pad::CachePadded::new(AtomicU64::new(0)))
                        .collect(),
                )
            },
            ticket: AtomicU64::new(0),
            tracer: Tracer::default(),
            gate: if mode == Mode::Gated && !coop {
                Some(Gate::new(n))
            } else {
                None
            },
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The execution mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// `true` for runtimes built by [`Runtime::coop`] or
    /// [`Runtime::coop_free`]: virtual processes driven cooperatively
    /// on the controller thread, no worker threads.
    pub fn is_coop(&self) -> bool {
        self.coop
    }

    /// The per-process capability used to apply primitives.
    ///
    /// # Panics
    /// Panics if `pid >= self.n()`.
    pub fn ctx(self: &Arc<Self>, pid: usize) -> ProcCtx {
        assert!(pid < self.n, "pid {pid} out of range (n = {})", self.n);
        ProcCtx::new(self.clone(), pid)
    }

    /// One context per process, in pid order.
    pub fn ctxs(self: &Arc<Self>) -> Vec<ProcCtx> {
        (0..self.n).map(|pid| self.ctx(pid)).collect()
    }

    /// Steps (primitive applications) performed so far by process `pid`.
    pub fn steps_of(&self, pid: usize) -> u64 {
        // relaxed-ok: monotonic counter; exact at gate stable points.
        self.steps.at(pid).load(Ordering::Relaxed)
    }

    /// Total steps performed by all processes.
    pub fn total_steps(&self) -> u64 {
        self.steps.total()
    }

    /// A snapshot of all per-process counters.
    pub fn step_stats(&self) -> StepStats {
        StepStats::new(self.steps.snapshot())
    }

    /// Reset all step counters to zero (counters only; memory untouched).
    pub fn reset_steps(&self) {
        self.steps.reset();
    }

    /// A fresh logical timestamp; strictly increasing across the runtime.
    pub fn ticket(&self) -> u64 {
        self.ticket.fetch_add(1, Ordering::SeqCst)
    }

    pub(crate) fn count_step(&self, pid: usize) {
        // relaxed-ok: a per-process monotonic counter; cross-thread reads
        // happen only at controller stable points (gate/quiesce provide
        // the ordering) or as statistical snapshots.
        self.steps.at(pid).fetch_add(1, Ordering::Relaxed);
    }

    /// `true` while any trace consumer (log or analysis sink) is active
    /// — the flag primitives consult before digesting object states.
    #[inline]
    pub(crate) fn trace_active(&self) -> bool {
        self.tracer.is_active()
    }

    pub(crate) fn trace_access(
        &self,
        pid: usize,
        obj: usize,
        kind: AccessKind,
        before: u64,
        after: u64,
    ) {
        self.tracer.emit(|seq| {
            TraceEvent::Access(Access {
                seq,
                pid,
                obj,
                kind,
                before,
                after,
            })
        });
    }

    pub(crate) fn trace_invoke(&self, pid: usize, kind: OpKind, inv: u64) {
        self.tracer.emit(|seq| TraceEvent::Invoke {
            seq,
            pid,
            kind,
            inv,
        });
    }

    pub(crate) fn trace_complete(&self, pid: usize, kind: OpKind, resp: u64) {
        self.tracer.emit(|seq| TraceEvent::Complete {
            seq,
            pid,
            kind,
            resp,
        });
    }

    pub(crate) fn trace_grant(&self, pid: usize) {
        self.tracer.emit(|seq| TraceEvent::Grant { seq, pid });
    }

    pub(crate) fn trace_crash(&self, pid: usize) {
        self.tracer.emit(|seq| TraceEvent::Crash { seq, pid });
    }

    /// Attach an [`Analyzer`]: from now on every trace event is pushed
    /// into its passes online, whether or not the trace *log* is
    /// enabled. At most one analyzer per runtime, ever.
    ///
    /// # Panics
    /// Panics if an analyzer is already attached.
    pub fn attach_analysis(&self, analyzer: Arc<Analyzer>) {
        analyzer.attach_meta(RunMeta {
            n: self.n,
            gated: self.mode == Mode::Gated,
            coop: self.coop,
        });
        self.tracer.attach(analyzer);
    }

    /// The attached analyzer, if any.
    pub fn analysis(&self) -> Option<&Arc<Analyzer>> {
        self.tracer.sink()
    }

    /// Stop feeding the analysis sink permanently. Called by backend
    /// teardown (suspended operations are polled to completion outside
    /// the modelled execution; that noise must not reach the passes) —
    /// call it earlier to cut analysis off at a chosen point.
    pub fn seal_analysis(&self) {
        self.tracer.seal();
    }

    /// Start recording every primitive application into the trace log.
    pub fn enable_tracing(&self) {
        self.tracer.set_enabled(true);
    }

    /// Stop recording primitive applications.
    pub fn disable_tracing(&self) {
        self.tracer.set_enabled(false);
    }

    /// `true` while tracing is on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Drain and return the trace recorded so far.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.tracer.take()
    }

    /// Drain the trace into `buf` (cleared first), recycling its
    /// allocation as the new log storage. The explorer drains once per
    /// granted step — this keeps that hot path allocation-free.
    pub fn take_trace_into(&self, buf: &mut Vec<TraceEvent>) {
        self.tracer.take_into(buf);
    }

    /// Permanently release the gate; parked processes run free afterwards.
    ///
    /// Used on teardown so worker threads never deadlock. No-op on
    /// free-running and coop runtimes (neither parks anything).
    pub fn release_gate(&self) {
        if let Some(gate) = &self.gate {
            gate.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_are_counted_per_process() {
        let rt = Runtime::free_running(3);
        rt.count_step(0);
        rt.count_step(0);
        rt.count_step(2);
        assert_eq!(rt.steps_of(0), 2);
        assert_eq!(rt.steps_of(1), 0);
        assert_eq!(rt.steps_of(2), 1);
        assert_eq!(rt.total_steps(), 3);
    }

    #[test]
    fn reset_clears_counters() {
        let rt = Runtime::free_running(2);
        rt.count_step(1);
        rt.reset_steps();
        assert_eq!(rt.total_steps(), 0);
    }

    #[test]
    fn tickets_increase() {
        let rt = Runtime::free_running(1);
        let a = rt.ticket();
        let b = rt.ticket();
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ctx_rejects_bad_pid() {
        let rt = Runtime::free_running(2);
        let _ = rt.ctx(2);
    }

    #[test]
    fn coop_runtime_is_gated_without_a_gate() {
        let rt = Runtime::coop(4);
        assert_eq!(rt.mode(), Mode::Gated);
        assert!(rt.is_coop());
        assert!(rt.gate.is_none());
        // Primitives on a coop runtime never park; they just count.
        let ctx = rt.ctx(3);
        let reg = crate::Register::new(0);
        reg.write(&ctx, 9);
        assert_eq!(rt.steps_of(3), 1);
    }

    #[test]
    fn coop_free_runtime_is_free_running_without_a_gate() {
        let rt = Runtime::coop_free(4);
        assert_eq!(rt.mode(), Mode::FreeRunning);
        assert!(rt.is_coop());
        assert!(rt.gate.is_none());
        // Primitives never park; they just count.
        let ctx = rt.ctx(1);
        let reg = crate::Register::new(0);
        reg.write(&ctx, 5);
        assert_eq!(rt.steps_of(1), 1);
    }

    #[test]
    fn thread_runtimes_are_not_coop() {
        assert!(!Runtime::gated(2).is_coop());
        assert!(!Runtime::free_running(2).is_coop());
    }
}
