//! Optional access tracing: a global, ordered log of primitive
//! applications, used by the lower-bound experiments (awareness-set
//! computation per Definition III.2/III.3, and "distinct base objects
//! accessed per operation" per [5], Theorem 1).
//!
//! Tracing is designed for *gated* executions, where steps are already
//! fully serialized; the log order then equals the execution order. It
//! works in free-running mode too, but the log order is then merely one
//! valid linear order of the (SeqCst) primitives.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// The primitive applied by a traced step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A trivial primitive: never changes the object.
    Read,
    /// A nontrivial historyless primitive: overwrites unconditionally.
    Write,
    /// `test&set`: reads and overwrites (historyless).
    TestAndSet,
    /// `fetch&add` (baseline only; not in the paper's primitive set).
    FetchAdd,
}

impl AccessKind {
    /// `true` if the primitive may change the object's value.
    pub fn is_nontrivial(self) -> bool {
        !matches!(self, AccessKind::Read)
    }

    /// `true` if the issuing process learns the object's value.
    pub fn is_reading(self) -> bool {
        !matches!(self, AccessKind::Write)
    }
}

/// One primitive application, as recorded in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the recorded order (0-based).
    pub seq: u64,
    /// Issuing process.
    pub pid: usize,
    /// Base-object identity (its address; stable for the object's life).
    pub obj: usize,
    /// Which primitive was applied.
    pub kind: AccessKind,
}

/// The trace collector owned by a [`Runtime`](crate::Runtime).
#[derive(Debug, Default)]
pub(crate) struct Tracer {
    enabled: AtomicBool,
    log: Mutex<Vec<TraceEvent>>,
}

impl Tracer {
    #[inline]
    pub(crate) fn record(&self, pid: usize, obj: usize, kind: AccessKind) {
        if self.enabled.load(Ordering::Relaxed) {
            let mut log = self.log.lock();
            let seq = log.len() as u64;
            log.push(TraceEvent {
                seq,
                pid,
                obj,
                kind,
            });
        }
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    pub(crate) fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.log.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::default();
        t.record(0, 1, AccessKind::Read);
        assert!(t.take().is_empty());
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let t = Tracer::default();
        t.set_enabled(true);
        t.record(0, 10, AccessKind::Write);
        t.record(1, 10, AccessKind::Read);
        let log = t.take();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].seq, 0);
        assert_eq!(log[0].kind, AccessKind::Write);
        assert_eq!(log[1].pid, 1);
        assert!(t.take().is_empty(), "take drains");
    }

    #[test]
    fn kind_classification() {
        assert!(!AccessKind::Read.is_nontrivial());
        assert!(AccessKind::Write.is_nontrivial());
        assert!(AccessKind::TestAndSet.is_nontrivial());
        assert!(AccessKind::Read.is_reading());
        assert!(!AccessKind::Write.is_reading());
        assert!(AccessKind::TestAndSet.is_reading());
    }
}
