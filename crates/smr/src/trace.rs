//! Optional execution tracing: a global, ordered event stream of
//! primitive applications and controller decisions, used by the
//! lower-bound experiments (awareness-set computation per Definition
//! III.2/III.3) and by the online analysis passes ([`crate::analysis`]).
//!
//! Tracing is designed for *gated* executions, where steps are already
//! fully serialized; the stream order then equals the execution order.
//! It works in free-running mode too, but the order is then merely one
//! valid linear order of the (SeqCst) primitives, and controller-side
//! events ([`TraceEvent::Grant`], [`TraceEvent::Crash`]) are absent.
//!
//! The stream has two consumers, independently switchable:
//!
//! * the **log** ([`Runtime::enable_tracing`](crate::Runtime)) — events
//!   are buffered and drained with
//!   [`take_trace`](crate::Runtime::take_trace);
//! * an **analysis sink**
//!   ([`Runtime::attach_analysis`](crate::Runtime)) — events are pushed
//!   into the attached [`Analyzer`](crate::analysis::Analyzer) as they
//!   happen.
//!
//! With neither active, emission is a single relaxed load and nothing
//! else — tracing is zero-cost when off.

use crate::analysis::Analyzer;
use crate::history::OpKind;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The primitive applied by a traced step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A trivial primitive: never changes the object.
    Read,
    /// A nontrivial historyless primitive: overwrites unconditionally.
    Write,
    /// `test&set`: reads and overwrites (historyless).
    TestAndSet,
    /// `fetch&add` (baseline only; not in the paper's primitive set).
    FetchAdd,
}

impl AccessKind {
    /// `true` if the primitive may change the object's value.
    pub fn is_nontrivial(self) -> bool {
        !matches!(self, AccessKind::Read)
    }

    /// `true` if the issuing process learns the object's value.
    pub fn is_reading(self) -> bool {
        !matches!(self, AccessKind::Write)
    }
}

/// One primitive application, as recorded in the trace.
///
/// `before`/`after` are the object's state *digests* immediately around
/// the application (the raw `u64` for word-sized objects, a hash for
/// wide ones), recorded by the primitive itself while it holds its step
/// permit — the ground truth the access-kind conformance pass checks
/// declarations against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Position in the recorded order (0-based).
    pub seq: u64,
    /// Issuing process.
    pub pid: usize,
    /// Base-object identity (its address; stable for the object's life).
    pub obj: usize,
    /// Which primitive was applied.
    pub kind: AccessKind,
    /// Object state digest immediately before the application.
    pub before: u64,
    /// Object state digest immediately after the application.
    pub after: u64,
}

/// One event of the execution, as recorded in the trace.
///
/// Primitive applications ([`TraceEvent::Access`]) are recorded by the
/// issuing process; invocations, completions, step grants and crashes
/// are controller-side edges recorded by the execution backends and the
/// [`Driver`](crate::Driver). In a gated coop execution the stream is
/// totally ordered and equals the execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A primitive application.
    Access(Access),
    /// An operation's invocation was announced (gated mode).
    Invoke {
        /// Position in the recorded order.
        seq: u64,
        /// Invoking process.
        pid: usize,
        /// The operation, with a placeholder return value (`ret = 0`):
        /// the result is unknown at invocation time. Passes that only
        /// need the name use [`OpKind::label`](crate::OpKind::label).
        kind: OpKind,
        /// The invocation's logical timestamp.
        inv: u64,
    },
    /// An operation completed.
    Complete {
        /// Position in the recorded order.
        seq: u64,
        /// Completing process.
        pid: usize,
        /// The operation, carrying its actual return value — enough
        /// for a linearizability pass to reconstruct the op record.
        kind: OpKind,
        /// The response's logical timestamp.
        resp: u64,
    },
    /// The controller granted `pid` one primitive step.
    Grant {
        /// Position in the recorded order.
        seq: u64,
        /// Granted process.
        pid: usize,
    },
    /// The controller crashed `pid`: it is never scheduled again.
    Crash {
        /// Position in the recorded order.
        seq: u64,
        /// Crashed process.
        pid: usize,
    },
}

impl TraceEvent {
    /// Position in the recorded order.
    pub fn seq(&self) -> u64 {
        match *self {
            TraceEvent::Access(Access { seq, .. })
            | TraceEvent::Invoke { seq, .. }
            | TraceEvent::Complete { seq, .. }
            | TraceEvent::Grant { seq, .. }
            | TraceEvent::Crash { seq, .. } => seq,
        }
    }

    /// The process this event belongs to.
    pub fn pid(&self) -> usize {
        match *self {
            TraceEvent::Access(Access { pid, .. })
            | TraceEvent::Invoke { pid, .. }
            | TraceEvent::Complete { pid, .. }
            | TraceEvent::Grant { pid, .. }
            | TraceEvent::Crash { pid, .. } => pid,
        }
    }

    /// The primitive application, for [`TraceEvent::Access`] events.
    pub fn access(&self) -> Option<&Access> {
        match self {
            TraceEvent::Access(a) => Some(a),
            _ => None,
        }
    }
}

/// The primitive applications of `trace`, in order — the view the
/// awareness-set computation and the step-signature tests consume.
pub fn accesses(trace: &[TraceEvent]) -> Vec<Access> {
    trace.iter().filter_map(|e| e.access()).copied().collect()
}

/// The trace collector owned by a [`Runtime`](crate::Runtime).
#[derive(Debug, Default)]
pub(crate) struct Tracer {
    /// `log_enabled || (sink attached && !sealed)` — the one flag the
    /// emission fast path loads.
    active: AtomicBool,
    log_enabled: AtomicBool,
    sealed: AtomicBool,
    seq: AtomicU64,
    log: Mutex<Vec<TraceEvent>>,
    sink: OnceLock<Arc<Analyzer>>,
}

impl Tracer {
    /// Emit one event: `build` receives the allocated sequence number.
    /// The closure runs only when a consumer is active.
    #[inline]
    pub(crate) fn emit(&self, build: impl FnOnce(u64) -> TraceEvent) {
        // relaxed-ok: a pure on/off flag; emission order is serialized by
        // the gate / coop controller, not by this load.
        if !self.active.load(Ordering::Relaxed) {
            return;
        }
        self.emit_slow(build);
    }

    #[cold]
    fn emit_slow(&self, build: impl FnOnce(u64) -> TraceEvent) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let ev = build(seq);
        if let Some(analyzer) = self.sink.get() {
            if !self.sealed.load(Ordering::SeqCst) {
                analyzer.on_event(&ev);
            }
        }
        if self.log_enabled.load(Ordering::SeqCst) {
            self.log.lock().push(ev);
        }
    }

    /// `true` while any consumer (log or live sink) is active.
    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        // relaxed-ok: same on/off flag as in `emit`.
        self.active.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.log_enabled.store(on, Ordering::SeqCst);
        self.refresh_active();
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.log_enabled.load(Ordering::SeqCst)
    }

    /// Attach the analysis sink. At most one per tracer, ever.
    pub(crate) fn attach(&self, analyzer: Arc<Analyzer>) {
        if self.sink.set(analyzer).is_err() {
            panic!("an analyzer is already attached to this runtime");
        }
        self.refresh_active();
    }

    pub(crate) fn sink(&self) -> Option<&Arc<Analyzer>> {
        self.sink.get()
    }

    /// Permanently stop feeding the analysis sink: called at the start
    /// of backend teardown, where suspended operations are polled to
    /// completion *outside* the modelled execution — that noise must not
    /// reach the passes. The log keeps working (post-teardown traces are
    /// an explicit debugging feature of free-running mode).
    pub(crate) fn seal(&self) {
        self.sealed.store(true, Ordering::SeqCst);
        self.refresh_active();
    }

    fn refresh_active(&self) {
        let sink_live = self.sink.get().is_some() && !self.sealed.load(Ordering::SeqCst);
        self.active.store(
            self.log_enabled.load(Ordering::SeqCst) || sink_live,
            Ordering::SeqCst,
        );
    }

    pub(crate) fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.log.lock())
    }

    /// Drain the log into `buf` (cleared first), swapping `buf`'s
    /// allocation in as the new log storage. A caller that drains once
    /// per granted step — the explorer — recycles one buffer instead of
    /// allocating a fresh `Vec` per step.
    pub(crate) fn take_into(&self, buf: &mut Vec<TraceEvent>) {
        buf.clear();
        std::mem::swap(&mut *self.log.lock(), buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(t: &Tracer, pid: usize, obj: usize, kind: AccessKind) {
        t.emit(|seq| {
            TraceEvent::Access(Access {
                seq,
                pid,
                obj,
                kind,
                before: 0,
                after: 0,
            })
        });
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::default();
        access(&t, 0, 1, AccessKind::Read);
        assert!(t.take().is_empty());
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let t = Tracer::default();
        t.set_enabled(true);
        access(&t, 0, 10, AccessKind::Write);
        access(&t, 1, 10, AccessKind::Read);
        let log = t.take();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].seq(), 0);
        assert_eq!(log[0].access().unwrap().kind, AccessKind::Write);
        assert_eq!(log[1].pid(), 1);
        assert!(t.take().is_empty(), "take drains");
    }

    #[test]
    fn seq_survives_disable_reenable() {
        let t = Tracer::default();
        t.set_enabled(true);
        access(&t, 0, 1, AccessKind::Read);
        t.set_enabled(false);
        access(&t, 0, 1, AccessKind::Read); // unrecorded, draws no seq
        t.set_enabled(true);
        access(&t, 0, 1, AccessKind::Read);
        let log = t.take();
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].seq(), 1, "seq counts emitted events only");
    }

    #[test]
    fn accesses_filters_controller_events() {
        let t = Tracer::default();
        t.set_enabled(true);
        t.emit(|seq| TraceEvent::Grant { seq, pid: 0 });
        access(&t, 0, 1, AccessKind::Write);
        t.emit(|seq| TraceEvent::Crash { seq, pid: 0 });
        let log = t.take();
        assert_eq!(log.len(), 3);
        let acc = accesses(&log);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].kind, AccessKind::Write);
    }

    #[test]
    fn kind_classification() {
        assert!(!AccessKind::Read.is_nontrivial());
        assert!(AccessKind::Write.is_nontrivial());
        assert!(AccessKind::TestAndSet.is_nontrivial());
        assert!(AccessKind::Read.is_reading());
        assert!(!AccessKind::Write.is_reading());
        assert!(AccessKind::TestAndSet.is_reading());
    }
}
