//! Step-count bookkeeping and summary statistics.

/// A snapshot of per-process step counters, with summary helpers used by
/// the experiment harness (amortized = total steps / total operations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepStats {
    per_process: Vec<u64>,
}

impl StepStats {
    pub(crate) fn new(per_process: Vec<u64>) -> Self {
        StepStats { per_process }
    }

    /// Steps of process `pid` at snapshot time.
    pub fn of(&self, pid: usize) -> u64 {
        self.per_process[pid]
    }

    /// Per-process counts, in pid order.
    pub fn per_process(&self) -> &[u64] {
        &self.per_process
    }

    /// Sum over all processes.
    pub fn total(&self) -> u64 {
        self.per_process.iter().sum()
    }

    /// Largest per-process count.
    pub fn max(&self) -> u64 {
        self.per_process.iter().copied().max().unwrap_or(0)
    }

    /// `total / ops` as a float — the amortized step complexity of an
    /// execution containing `ops` operations.
    pub fn amortized(&self, ops: u64) -> f64 {
        if ops == 0 {
            0.0
        } else {
            self.total() as f64 / ops as f64
        }
    }

    /// Element-wise difference `self - earlier` (counts are monotone).
    ///
    /// # Panics
    /// Panics if the snapshots have different lengths or `earlier` exceeds
    /// `self` anywhere.
    pub fn since(&self, earlier: &StepStats) -> StepStats {
        assert_eq!(self.per_process.len(), earlier.per_process.len());
        StepStats::new(
            self.per_process
                .iter()
                .zip(&earlier.per_process)
                .map(|(now, was)| {
                    now.checked_sub(*was)
                        .expect("step counters are monotone; snapshots out of order")
                })
                .collect(),
        )
    }
}

/// Minimal cache-padding so adjacent hot atomics don't false-share.
/// Public: object layouts built on `smr` primitives (e.g. the
/// k-multiplicative counter's hot switch stripe) pad with the same type
/// the runtime pads its per-process counters with.
pub mod pad {
    /// Pads `T` to (at least) a typical cache-line size.
    #[repr(align(128))]
    #[derive(Debug, Default)]
    pub struct CachePadded<T>(T);

    impl<T> CachePadded<T> {
        /// Wrap `t` in its own cache line.
        pub fn new(t: T) -> Self {
            CachePadded(t)
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_amortized() {
        let s = StepStats::new(vec![3, 5, 0]);
        assert_eq!(s.total(), 8);
        assert_eq!(s.max(), 5);
        assert_eq!(s.of(1), 5);
        assert!((s.amortized(4) - 2.0).abs() < 1e-12);
        assert_eq!(s.amortized(0), 0.0);
    }

    #[test]
    fn since_subtracts() {
        let a = StepStats::new(vec![1, 2]);
        let b = StepStats::new(vec![4, 2]);
        assert_eq!(b.since(&a).per_process(), &[3, 0]);
    }

    #[test]
    #[should_panic]
    fn since_rejects_non_monotone() {
        let a = StepStats::new(vec![5]);
        let b = StepStats::new(vec![4]);
        let _ = b.since(&a);
    }
}
