//! The access-kind conformance checker: declared [`AccessKind`]s must
//! match observed effects.
//!
//! Every [`Access`](crate::trace::Access) event carries the object's
//! state digest immediately before and after the primitive, recorded by
//! the primitive itself while it holds its step permit. Two checks run
//! over those digests:
//!
//! * **Reads are trivial** — a step declared [`AccessKind::Read`] must
//!   leave the object unchanged (`before == after`). A write path
//!   mis-declared as a read — precisely the mutation that would make the
//!   explorer's read/read commutation rule unsound — trips this on its
//!   first state-changing application.
//! * **Serialized-state continuity** (gated runs only) — successive
//!   accesses to the same object must agree: each access's `before`
//!   equals the previous access's `after`. Gated executions serialize
//!   all primitives, and the model forbids mutating base objects outside
//!   primitives, so a discontinuity means an object was modified through
//!   a back door (or two objects alias one identity).
//!
//! The replay-based half of conformance checking — sampling step pairs
//! the pruner treats as independent and verifying they actually commute
//! — is [`commutation_audit`](super::commutation_audit).
//!
//! [`AccessKind`]: crate::AccessKind
//! [`AccessKind::Read`]: crate::AccessKind::Read

use super::{AnalysisPass, RunMeta, Violation};
use crate::trace::{AccessKind, TraceEvent};
use std::collections::HashMap;

/// The access-kind conformance pass. See the [module docs](self).
pub struct Conformance {
    gated: bool,
    /// Last observed `after` digest per object.
    last_after: HashMap<usize, u64>,
    /// In-flight operation label per pid, for naming the machine.
    labels: Vec<Option<&'static str>>,
    violations: Vec<Violation>,
    max_violations: usize,
}

impl Conformance {
    /// A fresh pass.
    pub fn new() -> Self {
        Conformance {
            gated: true,
            last_after: HashMap::new(),
            labels: Vec::new(),
            violations: Vec::new(),
            max_violations: 64,
        }
    }

    fn label_of(&mut self, pid: usize) -> &'static str {
        if pid >= self.labels.len() {
            self.labels.resize(pid + 1, None);
        }
        self.labels[pid].unwrap_or("<unannounced op>")
    }

    fn set_label(&mut self, pid: usize, label: Option<&'static str>) {
        if pid >= self.labels.len() {
            self.labels.resize(pid + 1, None);
        }
        self.labels[pid] = label;
    }

    fn violate(&mut self, pid: usize, seq: u64, message: String) {
        if self.violations.len() < self.max_violations {
            self.violations.push(Violation {
                pass: "conformance",
                pid: Some(pid),
                seq: Some(seq),
                message,
            });
        }
    }
}

impl Default for Conformance {
    fn default() -> Self {
        Conformance::new()
    }
}

impl AnalysisPass for Conformance {
    fn name(&self) -> &'static str {
        "conformance"
    }

    fn on_attach(&mut self, meta: &RunMeta) {
        self.gated = meta.gated;
    }

    fn on_event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Invoke { pid, kind, .. } => {
                self.set_label(pid, Some(kind.label()));
                return;
            }
            TraceEvent::Complete { pid, .. } | TraceEvent::Crash { pid, .. } => {
                self.set_label(pid, None);
                return;
            }
            _ => {}
        }
        let Some(a) = ev.access() else { return };
        if a.kind == AccessKind::Read && a.before != a.after {
            let label = self.label_of(a.pid);
            self.violate(
                a.pid,
                a.seq,
                format!(
                    "machine {label:?}: step declared Read on object {:#x} \
                     changed its state ({:#x} -> {:#x}): a nontrivial \
                     primitive is mis-declared as trivial",
                    a.obj, a.before, a.after
                ),
            );
        }
        if self.gated {
            if let Some(&prev) = self.last_after.get(&a.obj) {
                if prev != a.before {
                    let label = self.label_of(a.pid);
                    self.violate(
                        a.pid,
                        a.seq,
                        format!(
                            "machine {label:?}: object {:#x} state discontinuity: \
                             previous access left {:#x}, this {:?} observed {:#x} \
                             before it — the object was modified outside a primitive",
                            a.obj, prev, a.kind, a.before
                        ),
                    );
                }
            }
            self.last_after.insert(a.obj, a.after);
        }
    }

    fn finish(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Access;

    fn meta() -> RunMeta {
        RunMeta {
            n: 2,
            gated: true,
            coop: true,
        }
    }

    fn acc(seq: u64, kind: AccessKind, before: u64, after: u64) -> TraceEvent {
        TraceEvent::Access(Access {
            seq,
            pid: 0,
            obj: 0x20,
            kind,
            before,
            after,
        })
    }

    #[test]
    fn honest_sequence_passes() {
        let mut c = Conformance::new();
        c.on_attach(&meta());
        c.on_event(&acc(0, AccessKind::Write, 0, 5));
        c.on_event(&acc(1, AccessKind::Read, 5, 5));
        c.on_event(&acc(2, AccessKind::TestAndSet, 5, 1));
        assert!(c.finish().is_empty());
    }

    #[test]
    fn mutating_read_is_flagged() {
        let mut c = Conformance::new();
        c.on_attach(&meta());
        c.on_event(&acc(0, AccessKind::Read, 0, 7));
        let v = c.finish();
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("mis-declared"), "{}", v[0].message);
        assert_eq!(v[0].seq, Some(0));
    }

    #[test]
    fn state_discontinuity_is_flagged_in_gated_mode_only() {
        let mut c = Conformance::new();
        c.on_attach(&meta());
        c.on_event(&acc(0, AccessKind::Write, 0, 5));
        c.on_event(&acc(1, AccessKind::Read, 9, 9)); // 5 -> 9 out of band
        let v = c.finish();
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("discontinuity"), "{}", v[0].message);

        let mut c = Conformance::new();
        c.on_attach(&RunMeta {
            n: 2,
            gated: false,
            coop: false,
        });
        // Free-running: interleavings can legitimately produce digests
        // the stream order does not explain; continuity is not checked.
        c.on_event(&acc(0, AccessKind::Write, 0, 5));
        c.on_event(&acc(1, AccessKind::Read, 9, 9));
        assert!(c.finish().is_empty());
    }
}
