//! The poll-discipline checker: exactly one primitive per granted poll,
//! zero while priming.
//!
//! The coop backend's whole determinism story rests on the [`OpTask`]
//! contract (priming polls apply no primitive; a granted poll applies
//! exactly one). The thread backend enforces it *physically* (the gate
//! parks every primitive); the coop backend asserts step-counter deltas
//! around each poll. This pass checks the same contract *observationally*
//! from the event stream — grants and accesses interleave 1:1 — so it
//! also covers lenient runs (where the backend asserts are off to let
//! mutants run far enough to be diagnosed), and it attributes each
//! violation to the operation (machine) and trace position.
//!
//! [`OpTask`]: crate::OpTask

use super::{AnalysisPass, RunMeta, Violation};
use crate::trace::TraceEvent;

#[derive(Default, Clone)]
struct PidState {
    /// Label of the in-flight operation, if its invocation was announced.
    label: Option<&'static str>,
    /// A grant is open (granted, not yet closed by the next grant /
    /// completion / crash).
    open_grant: bool,
    /// Sequence number of the open grant.
    grant_seq: u64,
    /// Primitives applied under the open grant.
    in_grant: u32,
    /// Totals, for the accounting report.
    grants: u64,
    accesses: u64,
    ops: u64,
}

/// Per-pid accounting the pass accumulated — one row per process that
/// appeared in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollStats {
    /// The process.
    pub pid: usize,
    /// Grants observed.
    pub grants: u64,
    /// Primitive applications observed.
    pub accesses: u64,
    /// Invocations observed.
    pub ops: u64,
}

/// The poll-discipline pass. See the [module docs](self).
pub struct PollDiscipline {
    pids: Vec<PidState>,
    gated: bool,
    violations: Vec<Violation>,
    /// Cap so a hot loop of a badly broken machine cannot OOM the report.
    max_violations: usize,
}

impl PollDiscipline {
    /// A fresh pass.
    pub fn new() -> Self {
        PollDiscipline {
            pids: Vec::new(),
            gated: true,
            violations: Vec::new(),
            max_violations: 64,
        }
    }

    /// Per-pid accounting rows (pids in ascending order).
    pub fn stats(&self) -> Vec<PollStats> {
        self.pids
            .iter()
            .enumerate()
            .map(|(pid, st)| PollStats {
                pid,
                grants: st.grants,
                accesses: st.accesses,
                ops: st.ops,
            })
            .collect()
    }

    fn pid_mut(&mut self, pid: usize) -> &mut PidState {
        if pid >= self.pids.len() {
            self.pids.resize_with(pid + 1, PidState::default);
        }
        &mut self.pids[pid]
    }

    fn violate(&mut self, pid: usize, seq: u64, message: String) {
        if self.violations.len() < self.max_violations {
            self.violations.push(Violation {
                pass: "poll-discipline",
                pid: Some(pid),
                seq: Some(seq),
                message,
            });
        }
    }

    fn op_label(st: &PidState) -> &'static str {
        st.label.unwrap_or("<unannounced op>")
    }

    /// Close the open grant of `pid`, flagging an empty one. `why` names
    /// the closing edge for the report.
    fn close_grant(&mut self, pid: usize, why: &str) {
        let st = &mut self.pids[pid];
        if st.open_grant && st.in_grant == 0 {
            let label = Self::op_label(st);
            let grant_seq = st.grant_seq;
            st.open_grant = false;
            self.violate(
                pid,
                grant_seq,
                format!(
                    "machine {label:?}: granted poll applied no primitive \
                     (grant closed by {why})"
                ),
            );
        } else {
            st.open_grant = false;
        }
    }
}

impl Default for PollDiscipline {
    fn default() -> Self {
        PollDiscipline::new()
    }
}

impl AnalysisPass for PollDiscipline {
    fn name(&self) -> &'static str {
        "poll-discipline"
    }

    fn on_attach(&mut self, meta: &RunMeta) {
        self.gated = meta.gated;
        self.pids = vec![PidState::default(); meta.n];
    }

    fn on_event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Invoke { seq, pid, kind, .. } => {
                let label = kind.label();
                let st = self.pid_mut(pid);
                st.ops += 1;
                if let Some(open) = st.label {
                    self.violate(
                        pid,
                        seq,
                        format!(
                            "machine {label:?} invoked while machine {open:?} \
                             is still in flight"
                        ),
                    );
                }
                self.pids[pid].label = Some(label);
            }
            TraceEvent::Grant { seq, pid } => {
                self.pid_mut(pid).grants += 1;
                self.close_grant(pid, "the next grant");
                let st = &mut self.pids[pid];
                st.open_grant = true;
                st.grant_seq = seq;
                st.in_grant = 0;
            }
            TraceEvent::Access(a) => {
                let gated = self.gated;
                let st = self.pid_mut(a.pid);
                st.accesses += 1;
                if !gated {
                    return; // free-running: no grants exist to pair with
                }
                if !st.open_grant {
                    let label = Self::op_label(st);
                    self.violate(
                        a.pid,
                        a.seq,
                        format!(
                            "machine {label:?}: primitive {:?} on object {:#x} \
                             applied outside a granted poll (priming, or never granted)",
                            a.kind, a.obj
                        ),
                    );
                } else {
                    st.in_grant += 1;
                    if st.in_grant > 1 {
                        let n = st.in_grant;
                        let label = Self::op_label(st);
                        self.violate(
                            a.pid,
                            a.seq,
                            format!(
                                "machine {label:?}: granted poll applied {n} primitives \
                                 (primitive {n} is {:?} on object {:#x}); \
                                 the contract allows exactly one",
                                a.kind, a.obj
                            ),
                        );
                    }
                }
            }
            TraceEvent::Complete { pid, .. } => {
                self.pid_mut(pid);
                // A grant may legitimately be closed by the completion it
                // produced (the op's last primitive), but a completion
                // directly after an *empty* grant means a granted poll
                // returned Ready without stepping.
                self.close_grant(pid, "the operation's completion");
                self.pids[pid].label = None;
            }
            TraceEvent::Crash { pid, .. } => {
                // The suspended operation will never run again; whatever
                // poll state it was in dies with it.
                let st = self.pid_mut(pid);
                st.open_grant = false;
                st.in_grant = 0;
                st.label = None;
            }
        }
    }

    fn finish(&mut self) -> Vec<Violation> {
        if self.gated {
            for pid in 0..self.pids.len() {
                if self.pids[pid].open_grant && self.pids[pid].in_grant == 0 {
                    self.close_grant(pid, "end of run");
                }
            }
        }
        std::mem::take(&mut self.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpKind;
    use crate::trace::{Access, AccessKind};

    fn meta(n: usize) -> RunMeta {
        RunMeta {
            n,
            gated: true,
            coop: true,
        }
    }

    fn acc(seq: u64, pid: usize) -> TraceEvent {
        TraceEvent::Access(Access {
            seq,
            pid,
            obj: 0x10,
            kind: AccessKind::Write,
            before: 0,
            after: 1,
        })
    }

    #[test]
    fn clean_grant_access_pairs_pass() {
        let mut p = PollDiscipline::new();
        p.on_attach(&meta(1));
        p.on_event(&TraceEvent::Invoke {
            seq: 0,
            pid: 0,
            kind: OpKind::Custom {
                label: "inc",
                arg: 0,
                ret: 0,
            },
            inv: 0,
        });
        p.on_event(&TraceEvent::Grant { seq: 1, pid: 0 });
        p.on_event(&acc(2, 0));
        p.on_event(&TraceEvent::Grant { seq: 3, pid: 0 });
        p.on_event(&acc(4, 0));
        p.on_event(&TraceEvent::Complete {
            seq: 5,
            pid: 0,
            kind: OpKind::Custom {
                label: "inc",
                arg: 0,
                ret: 0,
            },
            resp: 1,
        });
        assert!(p.finish().is_empty());
        let stats = p.stats();
        assert_eq!(stats[0].grants, 2);
        assert_eq!(stats[0].accesses, 2);
        assert_eq!(stats[0].ops, 1);
    }

    #[test]
    fn two_primitives_in_one_poll_are_flagged() {
        let mut p = PollDiscipline::new();
        p.on_attach(&meta(1));
        p.on_event(&TraceEvent::Invoke {
            seq: 0,
            pid: 0,
            kind: OpKind::Custom {
                label: "greedy",
                arg: 0,
                ret: 0,
            },
            inv: 0,
        });
        p.on_event(&TraceEvent::Grant { seq: 1, pid: 0 });
        p.on_event(&acc(2, 0));
        p.on_event(&acc(3, 0));
        let v = p.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].pid, Some(0));
        assert_eq!(v[0].seq, Some(3));
        assert!(v[0].message.contains("greedy"), "{}", v[0].message);
        assert!(v[0].message.contains("2 primitives"), "{}", v[0].message);
    }

    #[test]
    fn priming_primitive_is_flagged() {
        let mut p = PollDiscipline::new();
        p.on_attach(&meta(1));
        p.on_event(&TraceEvent::Invoke {
            seq: 0,
            pid: 0,
            kind: OpKind::Custom {
                label: "eager",
                arg: 0,
                ret: 0,
            },
            inv: 0,
        });
        p.on_event(&acc(1, 0)); // no grant yet
        let v = p.finish();
        assert_eq!(v.len(), 1);
        assert!(
            v[0].message.contains("outside a granted poll"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn empty_grant_is_flagged_at_close_and_at_finish() {
        let mut p = PollDiscipline::new();
        p.on_attach(&meta(2));
        p.on_event(&TraceEvent::Grant { seq: 0, pid: 0 });
        p.on_event(&TraceEvent::Grant { seq: 1, pid: 0 }); // closes empty grant
        p.on_event(&acc(2, 0));
        p.on_event(&TraceEvent::Grant { seq: 3, pid: 1 }); // still open at finish
        let v = p.finish();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].seq, Some(0));
        assert_eq!(v[1].pid, Some(1));
        assert!(v[1].message.contains("end of run"));
    }

    #[test]
    fn crash_clears_poll_state() {
        let mut p = PollDiscipline::new();
        p.on_attach(&meta(1));
        p.on_event(&TraceEvent::Grant { seq: 0, pid: 0 });
        p.on_event(&TraceEvent::Crash { seq: 1, pid: 0 });
        assert!(
            p.finish().is_empty(),
            "a crashed pid's open grant is not an empty-grant violation"
        );
    }

    #[test]
    fn free_running_streams_are_not_flagged() {
        let mut p = PollDiscipline::new();
        p.on_attach(&RunMeta {
            n: 1,
            gated: false,
            coop: false,
        });
        p.on_event(&acc(0, 0));
        p.on_event(&acc(1, 0));
        assert!(p.finish().is_empty());
    }
}
