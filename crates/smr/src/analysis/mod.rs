//! Online trace-analysis passes: machinery that *verifies* the runtime
//! contracts the rest of the repo silently trusts.
//!
//! Every correctness claim downstream of `smr` — the explorer's
//! commuting-step pruning, the monotone sweep's real-time precedence
//! order, the sketch envelopes checked on every interleaving — rests on
//! three contracts:
//!
//! 1. **Poll discipline** — a granted poll applies exactly one
//!    primitive; a priming poll applies none ([`PollDiscipline`]).
//! 2. **Access-kind conformance** — each step's declared [`AccessKind`]
//!    matches its actual effect on the object ([`Conformance`], plus the
//!    replay-based [`commutation_audit`](crate::analysis::commutation_audit)
//!    that checks the pruner's independence relation directly).
//! 3. **Happens-before soundness** — the grant/ticket order the checkers
//!    consume is consistent with the happens-before partial order of the
//!    execution ([`HappensBefore`]).
//!
//! An [`Analyzer`] bundles passes and attaches to a
//! [`Runtime`](crate::Runtime) via
//! [`attach_analysis`](crate::Runtime::attach_analysis); from then on
//! every [`TraceEvent`] is pushed into each pass *online*, during any
//! [`Driver`](crate::Driver) run and during every
//! [`explore`](crate::explore) replay (the explorer consults an attached
//! analyzer after each checked cut and reports its violations exactly
//! like checker rejections). When no analyzer is attached and the trace
//! log is off, the event stream costs one relaxed load per primitive —
//! zero-cost when disabled (measured: `exp_analysis`, BENCH_analysis).

mod commute;
mod conformance;
mod hb;
mod poll;

pub use commute::{commutation_audit, independent, CommuteConfig, StepMeta};
pub use conformance::Conformance;
pub use hb::HappensBefore;
pub(crate) use hb::Vc;
pub use poll::PollDiscipline;

use crate::trace::TraceEvent;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Facts about the run an [`Analyzer`] is attached to, handed to each
/// pass before the first event.
#[derive(Debug, Clone, Copy)]
pub struct RunMeta {
    /// Number of processes.
    pub n: usize,
    /// `true` for gated runtimes (thread-gated or coop): the event
    /// stream is serialized in execution order and grants are recorded.
    pub gated: bool,
    /// `true` for coop runtimes: additionally, invocation/completion
    /// events are recorded controller-side, so their stream positions
    /// (and ticket order) are deterministic.
    pub coop: bool,
}

/// One finding of an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The pass that produced the finding.
    pub pass: &'static str,
    /// The offending process, when attributable.
    pub pid: Option<usize>,
    /// Trace sequence number of the offending event, when attributable.
    pub seq: Option<u64>,
    /// Human-readable diagnosis naming the machine (operation label) and
    /// step.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.pass)?;
        if let Some(pid) = self.pid {
            write!(f, "pid {pid}: ")?;
        }
        write!(f, "{}", self.message)?;
        if let Some(seq) = self.seq {
            write!(f, " (trace seq {seq})")?;
        }
        Ok(())
    }
}

/// A pluggable online analysis pass over the [`TraceEvent`] stream.
///
/// Passes are driven strictly in event order (the tracer serializes
/// emission); they keep their own state and report accumulated findings
/// from [`finish`](AnalysisPass::finish).
pub trait AnalysisPass: Send {
    /// Stable pass name, used in [`Violation::pass`].
    fn name(&self) -> &'static str;

    /// Called once, before any event, with facts about the run.
    fn on_attach(&mut self, _meta: &RunMeta) {}

    /// Called for every trace event, in stream order.
    fn on_event(&mut self, ev: &TraceEvent);

    /// Close the pass and report its findings. Called once.
    fn finish(&mut self) -> Vec<Violation>;

    /// An optional one-line operational notice about how the pass ran —
    /// degraded modes, dropped coverage — as opposed to `finish`'s
    /// *verdicts*. A pass that silently stopped checking (e.g. a
    /// reorder buffer outrun) reports it here so run summaries can
    /// distinguish "checked clean" from "stopped checking".
    fn summary(&self) -> Option<String> {
        None
    }
}

struct Inner {
    passes: Vec<Box<dyn AnalysisPass>>,
    /// Cached report once [`Analyzer::finish`] ran; later events are
    /// ignored (teardown noise is additionally cut off by the tracer's
    /// seal).
    report: Option<Vec<Violation>>,
}

/// A bundle of [`AnalysisPass`]es attached to one runtime.
///
/// ```
/// use smr::analysis::Analyzer;
/// use smr::{Driver, OpSpec, Runtime};
///
/// let rt = Runtime::gated(2);
/// rt.attach_analysis(Analyzer::standard());
/// let mut d = Driver::new(rt.clone());
/// d.submit(0, OpSpec::custom("noop", 0), |_ctx| 0);
/// d.run_solo(0);
/// drop(d);
/// assert!(rt.analysis().unwrap().finish().is_empty());
/// ```
pub struct Analyzer {
    inner: Mutex<Inner>,
}

impl Analyzer {
    /// An analyzer over the given passes.
    pub fn new(passes: Vec<Box<dyn AnalysisPass>>) -> Arc<Analyzer> {
        Arc::new(Analyzer {
            inner: Mutex::new(Inner {
                passes,
                report: None,
            }),
        })
    }

    /// The standard bundle: poll discipline, access-kind conformance,
    /// happens-before audit.
    pub fn standard() -> Arc<Analyzer> {
        Analyzer::new(vec![
            Box::new(PollDiscipline::new()),
            Box::new(Conformance::new()),
            Box::new(HappensBefore::new()),
        ])
    }

    pub(crate) fn attach_meta(&self, meta: RunMeta) {
        let mut inner = self.inner.lock();
        for pass in &mut inner.passes {
            pass.on_attach(&meta);
        }
    }

    pub(crate) fn on_event(&self, ev: &TraceEvent) {
        let mut inner = self.inner.lock();
        if inner.report.is_some() {
            return;
        }
        for pass in &mut inner.passes {
            pass.on_event(ev);
        }
    }

    /// Close every pass and return the accumulated findings, most severe
    /// stream-order first. Idempotent: the first call caches the report,
    /// later calls return a clone and events arriving in between are
    /// dropped.
    pub fn finish(&self) -> Vec<Violation> {
        let mut inner = self.inner.lock();
        if inner.report.is_none() {
            let mut all = Vec::new();
            for pass in &mut inner.passes {
                all.extend(pass.finish());
            }
            all.sort_by_key(|v| v.seq.unwrap_or(u64::MAX));
            inner.report = Some(all);
        }
        inner.report.clone().expect("just cached")
    }

    /// `true` once [`finish`](Analyzer::finish) has run.
    pub fn finished(&self) -> bool {
        self.inner.lock().report.is_some()
    }

    /// Operational notices from every pass
    /// ([`AnalysisPass::summary`]) — degraded-mode reports that are not
    /// violations, for inclusion in run summaries. Callable before or
    /// after [`finish`](Analyzer::finish).
    pub fn summaries(&self) -> Vec<String> {
        let inner = self.inner.lock();
        inner
            .passes
            .iter()
            .filter_map(|p| p.summary().map(|s| format!("[{}] {s}", p.name())))
            .collect()
    }
}

impl fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Analyzer")
            .field("passes", &inner.passes.len())
            .field("finished", &inner.report.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountPass {
        events: u64,
    }

    impl AnalysisPass for CountPass {
        fn name(&self) -> &'static str {
            "count"
        }
        fn on_event(&mut self, _ev: &TraceEvent) {
            self.events += 1;
        }
        fn finish(&mut self) -> Vec<Violation> {
            vec![Violation {
                pass: "count",
                pid: None,
                seq: Some(self.events),
                message: format!("{} events", self.events),
            }]
        }
    }

    #[test]
    fn finish_is_idempotent_and_caches() {
        let a = Analyzer::new(vec![Box::new(CountPass { events: 0 })]);
        a.on_event(&TraceEvent::Grant { seq: 0, pid: 0 });
        let first = a.finish();
        assert_eq!(first[0].seq, Some(1));
        // Events after finish are dropped; the report is stable.
        a.on_event(&TraceEvent::Grant { seq: 1, pid: 0 });
        assert_eq!(a.finish(), first);
        assert!(a.finished());
    }

    #[test]
    fn violation_display_names_everything() {
        let v = Violation {
            pass: "poll",
            pid: Some(3),
            seq: Some(17),
            message: "two primitives in one poll".into(),
        };
        let s = v.to_string();
        assert!(s.contains("[poll]"));
        assert!(s.contains("pid 3"));
        assert!(s.contains("seq 17"));
    }
}

/// Seeded-mutant tests that need crate-private access (`ctx.step` is
/// `pub(crate)`, so only in-crate code can build an object that *lies*
/// about its access kind): each mutant must be caught by its pass, end
/// to end through a real coop driver. The poll-contract mutants, which
/// need only the public API, live in `tests/analysis_integration.rs`.
#[cfg(test)]
mod mutant_tests {
    use super::*;
    use crate::history::OpSpec;
    use crate::runtime::Runtime;
    use crate::task::{OpTask, Poll};
    use crate::trace::AccessKind;
    use crate::{Driver, ProcCtx};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// The mutant: `read` declares [`AccessKind::Read`] but actually
    /// increments the cell. Digests are recorded honestly (they are the
    /// ground truth the passes compare the declaration against).
    #[derive(Default)]
    struct LyingRegister {
        cell: AtomicU64,
    }

    impl LyingRegister {
        fn obj_id(&self) -> usize {
            self as *const Self as usize
        }

        /// Declared trivial; actually a fetch&add.
        fn lying_read(&self, ctx: &ProcCtx) -> u64 {
            let permit = ctx.step(self.obj_id(), AccessKind::Read);
            let before = self.cell.fetch_add(1, Ordering::SeqCst);
            if permit.traced() {
                permit.record(before, before.wrapping_add(1));
            }
            before
        }

        /// A genuinely trivial read.
        fn honest_read(&self, ctx: &ProcCtx) -> u64 {
            let permit = ctx.step(self.obj_id(), AccessKind::Read);
            let v = self.cell.load(Ordering::SeqCst);
            if permit.traced() {
                permit.record(v, v);
            }
            v
        }
    }

    /// Two primitives: first read as configured (lying or honest), then
    /// an honest read; returns the *first* value — so the first step
    /// neither completes the op nor draws tickets, making it eligible
    /// for the pruner's independence relation.
    struct TwoReads {
        reg: Arc<LyingRegister>,
        lie_first: bool,
        first: Option<u64>,
        primed: bool,
    }

    impl TwoReads {
        fn new(reg: Arc<LyingRegister>, lie_first: bool) -> Self {
            TwoReads {
                reg,
                lie_first,
                first: None,
                primed: false,
            }
        }
    }

    impl OpTask for TwoReads {
        fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
            if !self.primed {
                self.primed = true;
                return Poll::Pending;
            }
            match self.first {
                None => {
                    self.first = Some(if self.lie_first {
                        self.reg.lying_read(ctx)
                    } else {
                        self.reg.honest_read(ctx)
                    });
                    Poll::Pending
                }
                Some(v) => {
                    let _ = self.reg.honest_read(ctx);
                    Poll::Ready(u128::from(v))
                }
            }
        }
    }

    #[test]
    fn conformance_flags_a_mutating_read_end_to_end() {
        let rt = Runtime::coop(1);
        rt.attach_analysis(Analyzer::standard());
        let mut d = Driver::coop(rt.clone());
        d.submit_task(
            0,
            OpSpec::custom("lying-read", 0),
            TwoReads::new(Arc::new(LyingRegister::default()), true),
        );
        d.run_solo(0);
        drop(d);
        let violations = rt.analysis().unwrap().finish();
        let hit = violations
            .iter()
            .find(|v| v.pass == "conformance")
            .unwrap_or_else(|| panic!("conformance must flag the mutant: {violations:?}"));
        assert_eq!(hit.pid, Some(0));
        assert!(
            hit.message.contains("lying-read"),
            "the report names the machine: {hit}"
        );
    }

    #[test]
    fn commutation_audit_catches_the_pair_the_pruner_would_wrongly_trust() {
        // pid 0's first step is the lying read (declared Read, actually
        // an increment); pid 1's first step honestly reads the same
        // cell. Declared kinds make the adjacent pair Read/Read on one
        // object — pruner-independent — but transposing them changes
        // what pid 1 observes. The audit must refuse to let the pruning
        // rule trust the declaration.
        let violations = commutation_audit(
            || {
                let mut d = Driver::coop(Runtime::coop(2));
                let reg = Arc::new(LyingRegister::default());
                d.submit_task(
                    0,
                    OpSpec::custom("lying-read", 0),
                    TwoReads::new(reg.clone(), true),
                );
                d.submit_task(1, OpSpec::custom("observer", 0), TwoReads::new(reg, false));
                d
            },
            &CommuteConfig::default(),
        );
        assert!(
            !violations.is_empty(),
            "the mis-declared pair must fail the audit"
        );
        assert_eq!(violations[0].pass, "commutation");
        assert!(
            violations[0].message.contains("does not commute"),
            "{}",
            violations[0]
        );
    }

    #[test]
    fn honest_objects_pass_both_checks() {
        // The control: the same program shape with honest declarations
        // is clean under the full standard bundle and the audit.
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(2));
            let reg = Arc::new(LyingRegister::default());
            for pid in 0..2 {
                d.submit_task(
                    pid,
                    OpSpec::custom("observer", 0),
                    TwoReads::new(reg.clone(), false),
                );
            }
            d
        };
        let rt = Runtime::coop(2);
        rt.attach_analysis(Analyzer::standard());
        let mut d = Driver::coop(rt.clone());
        let reg = Arc::new(LyingRegister::default());
        for pid in 0..2 {
            d.submit_task(
                pid,
                OpSpec::custom("observer", 0),
                TwoReads::new(reg.clone(), false),
            );
        }
        d.run_schedule(&mut crate::sched::RoundRobin::new());
        drop(d);
        assert!(rt.analysis().unwrap().finish().is_empty());
        assert!(commutation_audit(factory, &CommuteConfig::default()).is_empty());
    }
}
