//! Replay-based commutation sampling: check that step pairs the
//! explorer's pruner treats as independent actually commute.
//!
//! [`explore`](crate::explore)'s pruning rule declares two adjacent
//! granted steps independent when they belong to different processes,
//! at most one of them emitted a history event, and they touch
//! different base objects (or are both `read`s of one object). The
//! soundness of
//! skipping the swapped schedule rests on that independence being real —
//! which is exactly what a mis-declared access kind would silently
//! break. This audit tests it *operationally*: run a base schedule,
//! collect every adjacent pruner-independent pair, and re-execute the
//! schedule with each sampled pair transposed. If the pair truly
//! commutes, the two executions must be indistinguishable: identical
//! operation histories (tickets and all) and an identical primitive
//! sequence — compared with base-object identities normalized by first
//! appearance, since fresh replays allocate fresh objects.
//!
//! The audit is replay-based, not online: it needs to *execute* the
//! counterfactual order, so it takes the same deterministic driver
//! factory [`explore`](crate::explore) does.

use super::Violation;
use crate::backend::CoopBackend;
use crate::driver::Driver;
use crate::trace::{accesses, Access, AccessKind};

/// Options for one [`commutation_audit`] call.
#[derive(Debug, Clone)]
pub struct CommuteConfig {
    /// Maximum transpositions to replay (pairs are sampled evenly across
    /// the schedule when more are eligible).
    pub max_pairs: usize,
}

impl Default for CommuteConfig {
    fn default() -> Self {
        CommuteConfig { max_pairs: 64 }
    }
}

/// A normalized access: object addresses replaced by first-appearance
/// indices so sequences from different replays compare meaningfully.
type NormAccess = (usize, usize, AccessKind, u64, u64);

fn normalize(seq: &[Access]) -> Vec<NormAccess> {
    let mut ids: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    seq.iter()
        .map(|a| {
            let next = ids.len();
            let idx = *ids.entry(a.obj).or_insert(next);
            (idx, a.pid, a.kind, a.before, a.after)
        })
        .collect()
}

/// One execution of a schedule: the pid granted at each step, what each
/// step did, and the final history (as a comparable string — `OpRecord`
/// carries no addresses, so its debug form is replay-stable).
struct BaseRun {
    schedule: Vec<usize>,
    steps: Vec<Access>,
    emitted: Vec<bool>,
    history: String,
}

/// Run the program round-robin to completion, recording the schedule.
fn base_run(mut d: Driver<CoopBackend>) -> BaseRun {
    d.runtime().enable_tracing();
    let _ = d.runtime().take_trace(); // drop factory-time noise
    let mut schedule = Vec::new();
    let mut emitted = Vec::new();
    let mut cursor = 0usize;
    while !d.active_set().is_empty() {
        let pid = d
            .active_set()
            .iter_sorted()
            .find(|&p| p >= cursor)
            .or_else(|| d.active_set().iter_sorted().next())
            .expect("active set non-empty");
        cursor = pid + 1;
        let before_len = d.history().len();
        let _ = d.step(pid);
        schedule.push(pid);
        emitted.push(d.history().len() != before_len);
    }
    let steps = accesses(&d.runtime().take_trace());
    debug_assert_eq!(steps.len(), schedule.len(), "one access per granted step");
    let history = format!("{:?}", d.history_snapshot().ops());
    BaseRun {
        schedule,
        steps,
        emitted,
        history,
    }
}

/// Re-run the base schedule with steps `i` and `i+1` transposed; return
/// the replay's accesses and final history, or an error if the
/// transposed schedule diverged (a pid completed early — itself proof
/// the pair was not independent).
fn swapped_run(
    d: &mut Driver<CoopBackend>,
    schedule: &[usize],
    i: usize,
) -> Result<(Vec<Access>, String), String> {
    d.runtime().enable_tracing();
    let _ = d.runtime().take_trace();
    for (at, &pid) in schedule.iter().enumerate() {
        let pid = match at {
            _ if at == i => schedule[i + 1],
            _ if at == i + 1 => schedule[i],
            _ => pid,
        };
        if !d.active_set().contains(pid) {
            return Err(format!(
                "pid {pid} ran out of steps at position {at} of the transposed \
                 schedule — the transposition changed control flow"
            ));
        }
        let _ = d.step(pid);
    }
    let steps = accesses(&d.runtime().take_trace());
    let history = format!("{:?}", d.history_snapshot().ops());
    Ok((steps, history))
}

/// What one granted step did, as the independence oracle sees it: the
/// acting process, the base object its single primitive touched, the
/// access kind, and whether the step emitted history events (completed
/// an operation and drew logical timestamps).
///
/// This is the shared currency between this audit and the explorer's
/// reduction machinery ([`explore`](crate::explore)): both judge step
/// pairs with [`independent`], so the audit operationally validates
/// exactly the relation the explorer prunes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepMeta {
    /// Acting process.
    pub pid: usize,
    /// Base object of the step's single primitive.
    pub obj: usize,
    /// Access kind of that primitive.
    pub kind: AccessKind,
    /// `true` if the step emitted history events.
    pub emitted: bool,
}

/// The explorer's independence relation (symmetric): two granted steps
/// commute when they belong to different processes, they did not *both*
/// emit history events, and they touch different base objects or are
/// both trivial `read`s of one object. Steps with no meta (crash
/// decisions, zero- or multi-primitive polls) never commute — callers
/// must treat `None` as dependent on everything.
///
/// Why one emission is tolerable: logical timestamps
/// ([`Runtime::ticket`](crate::Runtime)) are drawn only when an
/// operation invokes or completes — both on the *emitting* step — so a
/// non-emitting step draws no tickets and appends nothing to the
/// history. Transposing it with a remote emitting step leaves the
/// ticket-draw order, every history record, and (given the base-object
/// condition) all primitive results unchanged. Two emitting steps never
/// commute: their record order and ticket values swap observably.
pub fn independent(a: &StepMeta, b: &StepMeta) -> bool {
    a.pid != b.pid
        && !(a.emitted && b.emitted)
        && (a.obj != b.obj || (a.kind == AccessKind::Read && b.kind == AccessKind::Read))
}

/// [`independent`] over the audit's per-step accesses.
fn independent_accesses(a: &Access, b: &Access, a_emitted: bool, b_emitted: bool) -> bool {
    let meta = |acc: &Access, emitted: bool| StepMeta {
        pid: acc.pid,
        obj: acc.obj,
        kind: acc.kind,
        emitted,
    };
    independent(&meta(a, a_emitted), &meta(b, b_emitted))
}

/// Audit the pruner's independence relation on the program built by
/// `factory` (same contract as [`explore`](crate::explore)'s factory:
/// fresh, fully-submitted, deterministic coop driver per call). Returns
/// one violation per sampled pair that failed to commute.
pub fn commutation_audit<F>(factory: F, cfg: &CommuteConfig) -> Vec<Violation>
where
    F: Fn() -> Driver<CoopBackend>,
{
    let base = base_run(factory());
    let candidates: Vec<usize> = (0..base.schedule.len().saturating_sub(1))
        .filter(|&i| {
            independent_accesses(
                &base.steps[i],
                &base.steps[i + 1],
                base.emitted[i],
                base.emitted[i + 1],
            )
        })
        .collect();
    let stride = (candidates.len() / cfg.max_pairs.max(1)).max(1);
    let sampled = candidates.iter().copied().step_by(stride);

    let base_norm = normalize(&base.steps);
    let mut violations = Vec::new();
    for i in sampled.take(cfg.max_pairs) {
        let describe = |v: &mut Vec<Violation>, message: String| {
            let (a, b) = (&base.steps[i], &base.steps[i + 1]);
            v.push(Violation {
                pass: "commutation",
                pid: Some(b.pid),
                seq: Some(b.seq),
                message: format!(
                    "pruner-independent pair at steps {i},{} (pid {} {:?} / pid {} \
                     {:?}) does not commute: {message}",
                    i + 1,
                    a.pid,
                    a.kind,
                    b.pid,
                    b.kind,
                ),
            });
        };
        match swapped_run(&mut factory(), &base.schedule, i) {
            Err(msg) => describe(&mut violations, msg),
            Ok((mut steps, history)) => {
                if history != base.history {
                    describe(
                        &mut violations,
                        "the transposed schedule produced a different operation history".into(),
                    );
                    continue;
                }
                // Undo the transposition, then compare the normalized
                // primitive sequences end to end.
                if steps.len() > i + 1 {
                    steps.swap(i, i + 1);
                }
                let norm = normalize(&steps);
                if norm != base_norm {
                    let at = norm
                        .iter()
                        .zip(&base_norm)
                        .position(|(x, y)| x != y)
                        .map_or_else(|| "length".to_string(), |p| format!("step {p}"));
                    describe(
                        &mut violations,
                        format!("the primitive sequences diverge (first at {at})"),
                    );
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpSpec;
    use crate::runtime::Runtime;
    use crate::task::{OpTask, Poll};
    use crate::{ProcCtx, Register};
    use std::sync::Arc;

    /// Read a register then write `read + delta` — two primitives.
    struct Rmw {
        reg: Arc<Register>,
        read: Option<u64>,
        primed: bool,
    }

    impl Rmw {
        fn new(reg: Arc<Register>) -> Self {
            Rmw {
                reg,
                read: None,
                primed: false,
            }
        }
    }

    impl OpTask for Rmw {
        fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
            if !self.primed {
                self.primed = true;
                return Poll::Pending;
            }
            match self.read {
                None => {
                    self.read = Some(self.reg.read(ctx));
                    Poll::Pending
                }
                Some(v) => {
                    self.reg.write(ctx, v + 1);
                    Poll::Ready(u128::from(v))
                }
            }
        }
    }

    #[test]
    fn honest_private_registers_commute() {
        let violations = commutation_audit(
            || {
                let mut d = Driver::coop(Runtime::coop(3));
                for pid in 0..3 {
                    let reg = Arc::new(Register::new(0));
                    d.submit_task(pid, OpSpec::custom("rmw", 0), Rmw::new(reg));
                }
                d
            },
            &CommuteConfig::default(),
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn honest_shared_register_has_no_independent_pairs_misjudged() {
        // All steps hit one shared register; only read/read pairs are
        // pruner-independent, and reads genuinely commute.
        let violations = commutation_audit(
            || {
                let mut d = Driver::coop(Runtime::coop(4));
                let reg = Arc::new(Register::new(7));
                for pid in 0..4 {
                    d.submit_task(pid, OpSpec::custom("rmw", 0), Rmw::new(reg.clone()));
                }
                d
            },
            &CommuteConfig::default(),
        );
        assert!(violations.is_empty(), "{violations:?}");
    }
}
