//! # smr — instrumented shared-memory runtime
//!
//! This crate models the asynchronous shared-memory machine used by
//! *"Upper and Lower Bounds for Deterministic Approximate Objects"*
//! (Hendler, Khattabi, Milani, Travers — ICDCS 2021) and by the
//! lower-bound framework of Aspnes et al. it builds on.
//!
//! In that model, `n` crash-prone processes communicate by applying
//! *primitives* (`read`, `write`, `test&set`) to *base objects*; the cost
//! of an operation is the number of primitives it applies. This crate
//! provides:
//!
//! * **Instrumented base objects** ([`Register`], [`TasBit`],
//!   [`FaaRegister`]) — every primitive application is counted against the
//!   invoking process, so the *step complexity* the paper's theorems bound
//!   is measured exactly, independent of wall-clock time.
//! * **Two execution modes** in one [`Runtime`]:
//!   * *free-running* — primitives execute at native atomic speed, only a
//!     relaxed per-process counter is bumped (suitable for throughput
//!     benchmarks);
//!   * *gated* — each process parks before every primitive until a
//!     controller grants it one step, giving fully deterministic,
//!     scriptable interleavings at primitive granularity (what the
//!     adversary constructions in the paper's lower-bound proofs need).
//! * **A driver harness** ([`driver::Driver`]) generic over an
//!   *execution backend* ([`backend`]): the [`ThreadBackend`] runs one
//!   worker thread per process (closures or tasks, free-running or
//!   gated), while the [`CoopBackend`] drives 10⁵–10⁶ *virtual*
//!   processes as resumable [`OpTask`] state machines on the controller
//!   thread. Either way the controller submits operations, schedules
//!   steps and records a timestamped operation history for
//!   linearizability checking.
//! * **Schedulers** ([`sched`]) — round-robin, seeded-random and
//!   scripted, picking from an incrementally-maintained [`ActiveSet`] so
//!   policies stay cheap at 10⁵–10⁶ pids.
//! * **Exhaustive schedule exploration** ([`explore`]) — a bounded
//!   depth-first enumerator over the coop backend that checks *every*
//!   interleaving (with commuting-step pruning and optional crash
//!   injection) and minimizes failing schedules into replayable scripts,
//!   turning sampled schedule properties into proofs for small
//!   configurations.
//! * **Online trace analysis** ([`analysis`]) — pluggable passes fed the
//!   live trace-event stream of any gated run: poll-discipline checking,
//!   access-kind conformance against recorded state digests, and a
//!   vector-clock happens-before audit, plus a replay-based commutation
//!   audit backing the explorer's pruning rule.
//! * **A lock-free growable segment array** ([`SegArray`]) used to hold the
//!   unbounded `switch` sequence of the paper's Algorithm 1.
//!
//! ## Example
//!
//! ```
//! use smr::{Runtime, Register};
//!
//! let rt = Runtime::free_running(2);
//! let reg = Register::new(0);
//! let ctx = rt.ctx(0);
//! reg.write(&ctx, 7);
//! assert_eq!(reg.read(&ctx), 7);
//! assert_eq!(rt.steps_of(0), 2); // two primitive applications
//! ```

mod active;
pub mod analysis;
pub mod backend;
mod ctx;
pub mod driver;
pub mod explore;
mod gate;
pub mod history;
mod primitives;
mod runtime;
pub mod sched;
mod segarray;
mod step;
pub mod task;
mod trace;
mod wide;

pub use active::ActiveSet;
pub use analysis::{AnalysisPass, Analyzer, Violation};
pub use backend::{CoopBackend, ExecBackend, ThreadBackend};
pub use ctx::ProcCtx;
pub use driver::{Driver, StepOutcome};
pub use explore::{
    explore, explore_parallel, Choice, ExploreAlgo, ExploreConfig, ExploreStats, FoundViolation,
    Replay,
};
pub use history::{History, OpKind, OpRecord, OpSpec};
pub use primitives::{FaaRegister, Register, TasBit};
pub use runtime::{Mode, Runtime};
pub use segarray::SegArray;
pub use step::{pad::CachePadded, StepStats};
pub use task::{ErasedTask, ImmediateOp, Op, OpTask, Poll};
pub use trace::{accesses, Access, AccessKind, TraceEvent};
pub use wide::WideRegister;
