//! The [`Driver`]: controller-side scheduling and operation-history
//! recording, generic over an execution backend.
//!
//! In **gated** mode the driver is the controller: it submits operations
//! to per-process executors and advances the execution one primitive at
//! a time ([`Driver::step`]), under any [`Scheduler`] policy or under
//! direct, fully scripted control (what the lower-bound adversaries
//! need — including suspending a process mid-operation indefinitely by
//! simply never scheduling it again).
//!
//! In **free-running** mode operations execute without grants —
//! immediately on worker threads (thread backend), or batch-polled in
//! deterministic rounds on the controller thread
//! ([`Driver::coop_free`]); [`Driver::wait_all`] collects the
//! resulting history either way.
//!
//! How operations execute is the backend's business
//! ([`ExecBackend`](crate::backend::ExecBackend)):
//! [`Driver::new`] gives the classic one-worker-thread-per-process
//! [`ThreadBackend`]; [`Driver::coop`] drives *virtual* processes as
//! [`OpTask`] state machines on the controller thread ([`CoopBackend`]),
//! scaling gated executions to 10⁵–10⁶ processes. All controller-side
//! bookkeeping — histories, crash semantics, snapshots, the active set —
//! is shared and behaves identically on either backend.
//!
//! Determinism: gated executions serialize primitives completely, and the
//! implementations under test are deterministic, so replaying the same
//! submissions under the same schedule reproduces the same shared-memory
//! execution — the property the perturbation builder relies on.

use crate::active::ActiveSet;
use crate::backend::{CoopBackend, ExecBackend, ThreadBackend};
use crate::history::{History, OpRecord, OpSpec};
use crate::runtime::{Mode, Runtime};
use crate::sched::Scheduler;
use crate::task::{ErasedTask, Op, OpTask};
use crate::ProcCtx;
use std::sync::Arc;

pub use crate::backend::StepOutcome;

/// Controller for a set of per-process executors.
///
/// See the [module docs](self) for the execution modes and backends.
///
/// ```
/// use smr::{Driver, OpSpec, Register, Runtime};
/// use smr::sched::RoundRobin;
/// use std::sync::Arc;
///
/// let rt = Runtime::gated(2);
/// let mut driver = Driver::new(rt);
/// let reg = Arc::new(Register::new(0));
/// for pid in 0..2 {
///     let reg = Arc::clone(&reg);
///     driver.submit(pid, OpSpec::custom("rmw", 0), move |ctx| {
///         let v = reg.read(ctx);
///         reg.write(ctx, v + 1);
///         u128::from(v)
///     });
/// }
/// // Round-robin interleaving loses an update — deterministically.
/// driver.run_schedule(&mut RoundRobin::new());
/// assert_eq!(reg.peek(), 1);
/// ```
pub struct Driver<B: ExecBackend = ThreadBackend> {
    runtime: Arc<Runtime>,
    backend: B,
    submitted: Vec<u64>,
    completed: Vec<u64>,
    crashed: Vec<bool>,
    /// Invocation records of ops that have started but not yet completed
    /// (at most one per process). Surfaced as pending history records
    /// when the process crashes mid-operation, and by
    /// [`history_snapshot`] for processes that are merely suspended.
    ///
    /// [`history_snapshot`]: Driver::history_snapshot
    in_flight: Vec<Option<OpRecord>>,
    /// Uncrashed pids with unfinished submitted operations, maintained
    /// incrementally (no per-step rebuild).
    active: ActiveSet,
    /// Submitted-but-uncompleted ops across all processes, maintained
    /// incrementally so [`wait_all`](Driver::wait_all) is O(1) per
    /// event instead of rescanning 10⁶ per-pid counters.
    pending_ops: u64,
    history: History,
}

impl Driver<ThreadBackend> {
    /// A driver over the thread backend: one worker thread per process
    /// of `runtime` (gated or free-running).
    pub fn new(runtime: Arc<Runtime>) -> Self {
        let backend = ThreadBackend::new(runtime.clone());
        Driver::with_backend(runtime, backend)
    }

    /// Queue a closure operation for process `pid`. `spec` is the typed
    /// description of what the closure does ([`OpSpec::inc`],
    /// [`OpSpec::read`], …); the closure's return value completes the
    /// recorded [`OpKind`](crate::OpKind). In gated mode the operation
    /// will not take effect until scheduled; in free-running mode it
    /// starts immediately.
    ///
    /// Closures run start-to-finish on a worker thread, so they exist
    /// only on the thread backend; the coop backend takes resumable
    /// tasks ([`Driver::submit_task`], which works on both).
    ///
    /// # Panics
    /// Panics if `pid` has been [crashed](Driver::crash).
    pub fn submit<F>(&mut self, pid: usize, spec: OpSpec, f: F)
    where
        F: FnOnce(&ProcCtx) -> u128 + Send + 'static,
    {
        self.submit_op(pid, spec, Op::Call(Box::new(f)));
    }
}

impl Driver<CoopBackend> {
    /// A driver whose processes are *virtual*: no worker threads, no
    /// gate — `runtime` must come from [`Runtime::coop`], operations are
    /// submitted as [`OpTask`]s ([`Driver::submit_task`]), and each
    /// granted step polls the scheduled process's task once on the
    /// controller thread. Gated semantics (crash, suspension,
    /// snapshots, determinism) are identical to the thread backend's;
    /// the scaling ceiling moves from ~10³ OS threads to 10⁵–10⁶
    /// virtual processes.
    pub fn coop(runtime: Arc<Runtime>) -> Self {
        let backend = CoopBackend::new(runtime.clone());
        Driver::with_backend(runtime, backend)
    }

    /// Like [`coop`](Driver::coop), but the backend's poll-contract
    /// asserts are disabled ([`CoopBackend::new_lenient`]): a task that
    /// applies the wrong number of primitives per poll keeps running, so
    /// an attached [`Analyzer`](crate::analysis::Analyzer) can diagnose
    /// the violation instead of the backend panicking. For analysis and
    /// test harnesses; production runs should keep the asserts.
    pub fn coop_lenient(runtime: Arc<Runtime>) -> Self {
        let backend = CoopBackend::new_lenient(runtime.clone());
        Driver::with_backend(runtime, backend)
    }

    /// A driver whose virtual processes run **free**: `runtime` must
    /// come from [`Runtime::coop_free`], and instead of granting steps
    /// the backend batch-polls every runnable task in rounds — one
    /// primitive per task per round, ascending submission order —
    /// until [`wait_all`](Driver::wait_all) has drained every
    /// completion. No gate, no per-step scheduling, no crash/suspension
    /// — the coop backend's cache locality at free-running throughput.
    /// Executions are deterministic (single controller thread, fixed
    /// batch order): with ops submitted in ascending pid order the poll
    /// order is exactly the gated round-robin schedule, which is what
    /// `tests/backend_equivalence` pins.
    pub fn coop_free(runtime: Arc<Runtime>) -> Self {
        let backend = CoopBackend::new_free(runtime.clone());
        Driver::with_backend(runtime, backend)
    }

    /// Like [`coop_free`](Driver::coop_free), but each batch round
    /// polls in a seeded pseudo-random order. Replayable: the same seed
    /// reproduces the same execution.
    pub fn coop_free_seeded(runtime: Arc<Runtime>, seed: u64) -> Self {
        let backend = CoopBackend::new_free_seeded(runtime.clone(), seed);
        Driver::with_backend(runtime, backend)
    }
}

impl<B: ExecBackend> Driver<B> {
    fn with_backend(runtime: Arc<Runtime>, backend: B) -> Self {
        let n = runtime.n();
        Driver {
            runtime,
            backend,
            submitted: vec![0; n],
            completed: vec![0; n],
            crashed: vec![false; n],
            in_flight: vec![None; n],
            active: ActiveSet::new(n),
            pending_ops: 0,
            history: History::new(),
        }
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// Queue a resumable [`OpTask`] operation for process `pid` — the
    /// submission form that runs on every backend (on the thread
    /// backend the task is polled to completion on the worker, each of
    /// its primitives parking at the gate individually).
    ///
    /// # Panics
    /// Panics if `pid` has been [crashed](Driver::crash).
    pub fn submit_task<T>(&mut self, pid: usize, spec: OpSpec, task: T)
    where
        T: OpTask + 'static,
    {
        self.submit_op(pid, spec, Op::Task(ErasedTask::new(task)));
    }

    fn submit_op(&mut self, pid: usize, spec: OpSpec, op: Op) {
        // A crashed process never runs again, so work queued to it could
        // never execute — accepting it would silently skew the
        // submitted/active accounting (the pid would look runnable
        // forever to `run_schedule`). Refuse loudly instead.
        assert!(
            !self.crashed[pid],
            "submit to crashed process {pid}: a crashed process cannot run operations"
        );
        self.submitted[pid] += 1;
        self.pending_ops += 1;
        self.active.insert(pid);
        self.backend.submit(pid, spec, op);
    }

    /// Operations submitted so far to `pid`.
    pub fn submitted_to(&self, pid: usize) -> u64 {
        self.submitted[pid]
    }

    /// Operations of `pid` whose completion has been observed.
    pub fn completed_of(&self, pid: usize) -> u64 {
        self.completed[pid]
    }

    /// The incrementally-maintained set of process ids that still have
    /// unfinished submitted operations and have not been crashed — what
    /// [`run_schedule`](Driver::run_schedule) hands the [`Scheduler`].
    pub fn active_set(&self) -> &ActiveSet {
        &self.active
    }

    /// Process ids with unfinished operations, ascending (a sorted copy;
    /// prefer [`active_set`](Driver::active_set) in hot paths).
    pub fn active_pids(&self) -> Vec<usize> {
        self.active.iter_sorted().collect()
    }

    /// Crash process `pid`: it is never scheduled again in this driver's
    /// gated execution — the model's crash failure. The crash takes
    /// effect at the process's next primitive: queued operations that
    /// apply no primitives still run to completion (a crash is only
    /// observable through shared memory), while the operation parked at
    /// a primitive, if any, stays suspended forever and is surfaced as a
    /// pending history record (`resp = None`) so linearizability
    /// checkers can account for its optional effects. Executor resources
    /// (worker threads / task state) are reclaimed on drop.
    ///
    /// Gated mode only — in free-running mode processes cannot be
    /// stopped once submitted to.
    pub fn crash(&mut self, pid: usize) {
        assert_eq!(
            self.runtime.mode(),
            Mode::Gated,
            "crash() requires a gated runtime"
        );
        // Synchronize with the executor before deciding what is pending:
        // wait until the process is parked at a primitive or out of
        // work. This guarantees every announcement/completion it will
        // ever emit without further grants is drainable, so the drain
        // below observes a deterministic cut regardless of thread
        // timing.
        self.backend.quiesce(pid, self.submitted[pid]);
        self.crashed[pid] = true;
        self.runtime.trace_crash(pid);
        self.active.remove(pid);
        self.drain_events();
        if let Some(mut rec) = self.in_flight[pid].take() {
            // The announcement's `steps` field holds the process's
            // cumulative step count at invocation; convert it to the
            // steps the suspended op itself performed.
            rec.steps = self.runtime.steps_of(pid) - rec.steps;
            self.history.push(rec);
        }
    }

    /// `true` if `pid` has been crashed.
    pub fn is_crashed(&self, pid: usize) -> bool {
        self.crashed[pid]
    }

    /// Gated mode only: advance process `pid` by one primitive step (or
    /// learn that all of its submitted operations completed).
    ///
    /// # Panics
    /// Panics in free-running mode, and if `pid` has crashed.
    pub fn step(&mut self, pid: usize) -> StepOutcome {
        assert!(!self.crashed[pid], "process {pid} has crashed");
        let out = self.backend.step(pid, self.submitted[pid]);
        self.drain_events();
        out
    }

    /// Gated mode only: run `pid` exclusively until all its submitted
    /// operations complete. Returns the number of steps granted.
    pub fn run_solo(&mut self, pid: usize) -> u64 {
        let mut steps = 0;
        while self.step(pid) == StepOutcome::Stepped {
            steps += 1;
        }
        steps
    }

    /// Gated mode only: drive all submitted operations to completion under
    /// `sched`. Returns the total number of steps granted.
    pub fn run_schedule<S: Scheduler + ?Sized>(&mut self, sched: &mut S) -> u64 {
        let mut steps = 0;
        loop {
            if self.active.is_empty() {
                return steps;
            }
            let pid = sched.next(&self.active);
            debug_assert!(self.active.contains(pid), "scheduler picked inactive pid");
            if self.step(pid) == StepOutcome::Stepped {
                steps += 1;
            }
        }
    }

    /// Free-running mode only: block until every submitted operation has
    /// completed. (Would deadlock in gated mode — steps must be granted.)
    pub fn wait_all(&mut self) {
        assert_eq!(
            self.runtime.mode(),
            Mode::FreeRunning,
            "wait_all() requires a free-running runtime"
        );
        while self.total_pending() > 0 {
            let rec = self.backend.wait_event();
            self.record(rec);
        }
    }

    fn total_pending(&self) -> u64 {
        self.pending_ops
    }

    fn drain_events(&mut self) {
        // Destructure so the closure borrows fields, not `self` (the
        // backend is borrowed mutably for the duration of the drain).
        let Driver {
            backend,
            submitted,
            completed,
            in_flight,
            active,
            pending_ops,
            history,
            ..
        } = self;
        backend.drain(&mut |rec| {
            Self::record_fields(
                submitted,
                completed,
                in_flight,
                active,
                pending_ops,
                history,
                rec,
            )
        });
    }

    /// Process one executor event: an invocation announcement (pending
    /// record, `resp = None`) or a completion.
    fn record(&mut self, rec: OpRecord) {
        Self::record_fields(
            &self.submitted,
            &mut self.completed,
            &mut self.in_flight,
            &mut self.active,
            &mut self.pending_ops,
            &mut self.history,
            rec,
        );
    }

    fn record_fields(
        submitted: &[u64],
        completed: &mut [u64],
        in_flight: &mut [Option<OpRecord>],
        active: &mut ActiveSet,
        pending_ops: &mut u64,
        history: &mut History,
        rec: OpRecord,
    ) {
        if rec.resp.is_some() {
            let pid = rec.pid;
            in_flight[pid] = None;
            completed[pid] += 1;
            *pending_ops -= 1;
            if completed[pid] == submitted[pid] {
                active.remove(pid);
            }
            history.push(rec);
        } else {
            let pid = rec.pid;
            in_flight[pid] = Some(rec);
        }
    }

    /// The history recorded so far: completed operations, plus pending
    /// records (`resp = None`) for operations suspended by [`crash`].
    /// Use [`History::completed`] for the completed-only view, and
    /// [`history_snapshot`] for a view that also surfaces the in-flight
    /// operations of *suspended but uncrashed* processes.
    ///
    /// [`crash`]: Driver::crash
    /// [`history_snapshot`]: Driver::history_snapshot
    pub fn history(&self) -> &History {
        &self.history
    }

    /// A live snapshot of the history **including pending records for
    /// every in-flight operation** — crashed processes (as in
    /// [`history`]) *and* processes the schedule merely suspended
    /// mid-operation and may or may not ever run again.
    ///
    /// Gated mode: every uncrashed process is first quiesced at a stable
    /// point (parked at a primitive or idle) — the same synchronization
    /// [`crash`] uses (a no-op on the coop backend, which maintains that
    /// stable point continuously) — so the snapshot is a deterministic
    /// cut of the execution, and it is what a linearizability checker
    /// should consume when the execution has not quiesced: a suspended
    /// operation's effects are optional, exactly like a crashed one's.
    /// The suspended operations remain in flight: if the schedule later
    /// resumes them, the final history records their completions as
    /// usual.
    ///
    /// Free-running mode: workers send no invocation announcements, so
    /// an operation that is mid-execution has **no** pending record here
    /// — the snapshot is just the completed history drained so far, and
    /// it is *not* checker-complete until the execution quiesces
    /// ([`wait_all`]): a concurrent read may already have observed the
    /// effects of an operation this snapshot omits. Check free-running
    /// histories only after `wait_all`.
    ///
    /// [`wait_all`]: Driver::wait_all
    /// [`history`]: Driver::history
    /// [`crash`]: Driver::crash
    pub fn history_snapshot(&mut self) -> History {
        if self.runtime.mode() == Mode::Gated {
            for pid in 0..self.runtime.n() {
                if !self.crashed[pid] {
                    self.backend.quiesce(pid, self.submitted[pid]);
                }
            }
        }
        self.drain_events();
        let mut snap = self.history.clone();
        for pid in 0..self.runtime.n() {
            if let Some(rec) = &self.in_flight[pid] {
                let mut rec = rec.clone();
                // As in `crash`: the announcement's `steps` field carries
                // the cumulative count at invocation; report the steps
                // the suspended operation itself has performed so far.
                rec.steps = self.runtime.steps_of(pid) - rec.steps;
                snap.push(rec);
            }
        }
        snap
    }

    /// Take the recorded history, leaving an empty one.
    pub fn take_history(&mut self) -> History {
        std::mem::take(&mut self.history)
    }
}

// Teardown is the backend's job (`ExecBackend::shutdown`, invoked from
// each backend's own `Drop`): workers are unblocked and every in-flight
// or queued operation finishes free-running, so dropping a `Driver`
// leaves shared memory as if all submitted operations completed.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpKind;
    use crate::sched::{RoundRobin, Scripted, SeededRandom};
    use crate::task::Poll;
    use crate::{Register, Runtime, TasBit};

    #[test]
    fn free_running_executes_and_records() {
        let rt = Runtime::free_running(4);
        let mut d = Driver::new(rt.clone());
        let reg = Arc::new(Register::new(0));
        for pid in 0..4 {
            let reg = reg.clone();
            d.submit(pid, OpSpec::write(pid as u64), move |ctx| {
                reg.write(ctx, ctx.pid() as u64 + 1);
                0
            });
        }
        d.wait_all();
        assert_eq!(d.history().len(), 4);
        assert!(reg.peek() >= 1 && reg.peek() <= 4);
        assert_eq!(rt.total_steps(), 4);
    }

    #[test]
    fn gated_round_robin_runs_to_completion() {
        let rt = Runtime::gated(3);
        let mut d = Driver::new(rt.clone());
        let reg = Arc::new(Register::new(0));
        for pid in 0..3 {
            let reg = reg.clone();
            d.submit(pid, OpSpec::custom("rmw", 0), move |ctx| {
                let v = reg.read(ctx);
                reg.write(ctx, v + 1);
                u128::from(v)
            });
        }
        let steps = d.run_schedule(&mut RoundRobin::new());
        assert_eq!(steps, 6, "3 processes x 2 primitives");
        assert_eq!(d.history().len(), 3);
        // Round-robin interleaving of read;write read;write read;write:
        // all three read 0, final value 1.
        assert_eq!(reg.peek(), 1);
        for rec in d.history().ops() {
            assert_eq!(rec.returned(), 0, "every process read the initial value");
        }
    }

    #[test]
    fn gated_sequential_schedule_is_atomic() {
        let rt = Runtime::gated(3);
        let mut d = Driver::new(rt);
        let reg = Arc::new(Register::new(0));
        for pid in 0..3 {
            let reg = reg.clone();
            d.submit(pid, OpSpec::custom("rmw", 0), move |ctx| {
                let v = reg.read(ctx);
                reg.write(ctx, v + 1);
                u128::from(v)
            });
        }
        for pid in 0..3 {
            d.run_solo(pid);
        }
        assert_eq!(reg.peek(), 3, "solo runs do not interleave");
    }

    #[test]
    fn scripted_schedules_replay_identically() {
        let run = |seed: u64| -> Vec<u128> {
            let rt = Runtime::gated(4);
            let mut d = Driver::new(rt);
            let reg = Arc::new(Register::new(0));
            let tas = Arc::new(TasBit::new());
            for pid in 0..4 {
                let reg = reg.clone();
                let tas = tas.clone();
                d.submit(pid, OpSpec::custom("mix", 0), move |ctx| {
                    let won = !tas.test_and_set(ctx);
                    let v = reg.read(ctx);
                    reg.write(ctx, v * 2 + ctx.pid() as u64);
                    u128::from(won) << 64 | u128::from(v)
                });
            }
            let mut sched = SeededRandom::new(seed);
            d.run_schedule(&mut sched);
            let mut h = d.take_history().sorted_by_invocation();
            h.sort_by_key(|r| r.pid);
            h.iter().map(|r| r.returned()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same results");
    }

    #[test]
    fn zero_step_operations_complete() {
        let rt = Runtime::gated(2);
        let mut d = Driver::new(rt);
        d.submit(0, OpSpec::custom("noop", 0), |_ctx| 42);
        assert_eq!(d.run_solo(0), 0);
        assert_eq!(d.history().ops()[0].returned(), 42);
    }

    #[test]
    fn crash_after_zero_step_op_records_no_duplicate() {
        // The op performs no primitives, so it completes even if crash()
        // lands in the announcement→completion window: crash must
        // synchronize with the worker and record exactly one (completed)
        // op — never a pending duplicate.
        for _ in 0..50 {
            let rt = Runtime::gated(2);
            let mut d = Driver::new(rt);
            d.submit(0, OpSpec::custom("noop", 0), |_ctx| 42);
            d.crash(0);
            assert_eq!(d.completed_of(0), 1, "zero-primitive op completes");
            assert_eq!(d.history().len(), 1, "exactly one record");
            assert!(d.history().ops()[0].resp.is_some());
        }
    }

    #[test]
    fn crash_right_after_submit_is_deterministic() {
        // The op's first primitive parks the worker; crash() must wait
        // for that park so the pending record is surfaced on every run,
        // not only when the OS happened to schedule the worker first.
        for _ in 0..50 {
            let rt = Runtime::gated(2);
            let mut d = Driver::new(rt);
            let reg = Arc::new(Register::new(0));
            {
                let reg = reg.clone();
                d.submit(0, OpSpec::inc(), move |ctx| {
                    let v = reg.read(ctx);
                    reg.write(ctx, v + 1);
                    0
                });
            }
            d.crash(0);
            assert_eq!(d.completed_of(0), 0);
            assert_eq!(d.history().len(), 1, "pending record surfaced");
            let rec = &d.history().ops()[0];
            assert_eq!(rec.resp, None);
            assert_eq!(rec.kind, OpKind::Inc { amount: 1 });
            assert_eq!(reg.peek(), 0, "no primitive was granted");
        }
    }

    #[test]
    #[should_panic(expected = "submit to crashed process 0")]
    fn submit_to_crashed_process_panics() {
        let rt = Runtime::gated(2);
        let mut d = Driver::new(rt);
        d.crash(0);
        d.submit(0, OpSpec::inc(), |_ctx| 0);
    }

    #[test]
    #[should_panic(expected = "submit to crashed process 0")]
    fn submit_to_crashed_process_panics_on_coop_backend_too() {
        // The refusal lives in the shared controller path, so the panic
        // (and its message) must be identical across backends.
        let rt = Runtime::coop(2);
        let mut d = Driver::coop(rt);
        d.crash(0);
        d.submit_task(0, OpSpec::inc(), crate::task::ImmediateOp::new(|_| 0));
    }

    #[test]
    fn crashed_submit_panic_messages_match_across_backends() {
        // Pin the parity beyond the attribute checks above: capture both
        // panic payloads and compare them byte for byte. The process
        // panic hook is left alone (it is global, and tests run in
        // parallel threads); libtest captures a passing test's output,
        // so the two expected panic printouts stay invisible anyway.
        let catch = |f: Box<dyn FnOnce() + Send>| -> String {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let payload = result.expect_err("submit to crashed pid must panic");
            payload
                .downcast_ref::<String>()
                .cloned()
                .expect("panic payload is a formatted string")
        };
        let thread_msg = catch(Box::new(|| {
            let mut d = Driver::new(Runtime::gated(2));
            d.crash(1);
            d.submit(1, OpSpec::inc(), |_ctx| 0);
        }));
        let coop_msg = catch(Box::new(|| {
            let mut d = Driver::coop(Runtime::coop(2));
            d.crash(1);
            d.submit_task(1, OpSpec::inc(), crate::task::ImmediateOp::new(|_| 0));
        }));
        assert_eq!(thread_msg, coop_msg, "backends diverge on the refusal");
        assert!(thread_msg.contains("submit to crashed process 1"));
    }

    #[test]
    fn crash_mid_op_then_later_ops_never_invoked() {
        // Ops queued behind the suspended one must not generate records.
        let rt = Runtime::gated(2);
        let mut d = Driver::new(rt);
        let reg = Arc::new(Register::new(0));
        for i in 0..3 {
            let reg = reg.clone();
            d.submit(0, OpSpec::custom("w", i), move |ctx| {
                reg.write(ctx, 1);
                reg.write(ctx, 2);
                0
            });
        }
        assert_eq!(d.step(0), StepOutcome::Stepped);
        d.crash(0);
        assert_eq!(d.history().len(), 1, "only the started op is visible");
        assert_eq!(d.history().ops()[0].resp, None);
        assert_eq!(
            d.history().ops()[0].kind,
            OpKind::Custom {
                label: "w",
                arg: 0,
                ret: 0
            },
            "it is the first op"
        );
        assert_eq!(
            d.history().ops()[0].steps,
            1,
            "the pending record reports the step the op performed"
        );
        assert_eq!(d.history().total_steps(), d.runtime().total_steps());
    }

    #[test]
    fn mid_operation_suspension() {
        // Process 0 is suspended after its first primitive; process 1
        // completes; the suspended op finishes only at Driver drop.
        let rt = Runtime::gated(2);
        let mut d = Driver::new(rt);
        let reg = Arc::new(Register::new(10));
        {
            let reg = reg.clone();
            d.submit(0, OpSpec::custom("two-steps", 0), move |ctx| {
                let a = reg.read(ctx);
                reg.write(ctx, a + 1);
                0
            });
        }
        {
            let reg = reg.clone();
            d.submit(1, OpSpec::write(99), move |ctx| {
                reg.write(ctx, 99);
                0
            });
        }
        assert_eq!(d.step(0), StepOutcome::Stepped); // 0 read 10, now parked
        d.run_solo(1); // 1 writes 99
        assert_eq!(reg.peek(), 99);
        drop(d); // releases 0, which writes 10 + 1
        assert_eq!(reg.peek(), 11);
    }

    #[test]
    fn snapshot_surfaces_suspended_op_and_final_history_completes_it() {
        // A process suspended mid-operation (never crashed, never
        // rescheduled so far) is invisible to `history()` but must
        // appear as a pending record in `history_snapshot()`; once the
        // schedule resumes it, the final history records the completion
        // and a fresh snapshot has no pending residue.
        let rt = Runtime::gated(2);
        let mut d = Driver::new(rt);
        let reg = Arc::new(Register::new(0));
        {
            let reg = reg.clone();
            d.submit(0, OpSpec::inc(), move |ctx| {
                let v = reg.read(ctx);
                reg.write(ctx, v + 1);
                0
            });
        }
        d.submit(1, OpSpec::read(), {
            let reg = reg.clone();
            move |ctx| u128::from(reg.read(ctx))
        });
        assert_eq!(d.step(0), StepOutcome::Stepped); // 0 read, parked at write
        d.run_solo(1);

        assert_eq!(d.history().len(), 1, "only the completed read");
        let snap = d.history_snapshot();
        assert_eq!(snap.len(), 2, "snapshot adds the suspended inc");
        let pending: Vec<_> = snap.ops().iter().filter(|r| r.resp.is_none()).collect();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].pid, 0);
        assert_eq!(pending[0].kind, OpKind::Inc { amount: 1 });
        assert_eq!(pending[0].steps, 1, "one primitive performed so far");

        // Resume the suspended process: the op completes normally.
        d.run_solo(0);
        assert_eq!(d.completed_of(0), 1);
        let snap = d.history_snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.ops().iter().all(|r| r.resp.is_some()));
    }

    #[test]
    fn snapshot_waits_for_worker_to_reach_a_stable_point() {
        // Immediately after submit the worker may not have parked yet;
        // the snapshot must quiesce (same as crash) so the pending
        // record is surfaced deterministically on every run.
        for _ in 0..50 {
            let rt = Runtime::gated(2);
            let mut d = Driver::new(rt);
            let reg = Arc::new(Register::new(0));
            {
                let reg = reg.clone();
                d.submit(0, OpSpec::inc(), move |ctx| {
                    reg.write(ctx, 1);
                    0
                });
            }
            let snap = d.history_snapshot();
            assert_eq!(snap.len(), 1, "pending record surfaced");
            assert_eq!(snap.ops()[0].resp, None);
            assert_eq!(d.history().len(), 0, "plain history untouched");
        }
    }

    #[test]
    fn scripted_schedule_controls_interleaving() {
        let rt = Runtime::gated(2);
        let mut d = Driver::new(rt);
        let reg = Arc::new(Register::new(0));
        for pid in 0..2 {
            let reg = reg.clone();
            d.submit(pid, OpSpec::custom("rmw", 0), move |ctx| {
                let v = reg.read(ctx);
                reg.write(ctx, v + 10);
                u128::from(v)
            });
        }
        // p0 fully, then p1 fully: no lost update.
        let mut s = Scripted::new([0, 0, 1, 1]);
        d.run_schedule(&mut s);
        assert_eq!(reg.peek(), 20);
    }

    /// Minimal task: read a register, then write `v + delta`, returning
    /// the read value — two primitives, written to the poll contract.
    struct RmwTask {
        reg: Arc<Register>,
        delta: u64,
        read: Option<u64>,
        primed: bool,
    }

    impl RmwTask {
        fn new(reg: Arc<Register>, delta: u64) -> Self {
            RmwTask {
                reg,
                delta,
                read: None,
                primed: false,
            }
        }
    }

    impl OpTask for RmwTask {
        fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
            if !self.primed {
                self.primed = true;
                return Poll::Pending;
            }
            match self.read {
                None => {
                    self.read = Some(self.reg.read(ctx));
                    Poll::Pending
                }
                Some(v) => {
                    self.reg.write(ctx, v + self.delta);
                    Poll::Ready(u128::from(v))
                }
            }
        }
    }

    #[test]
    fn coop_round_robin_matches_thread_semantics() {
        let rt = Runtime::coop(3);
        let mut d = Driver::coop(rt.clone());
        let reg = Arc::new(Register::new(0));
        for pid in 0..3 {
            d.submit_task(pid, OpSpec::custom("rmw", 0), RmwTask::new(reg.clone(), 1));
        }
        let steps = d.run_schedule(&mut RoundRobin::new());
        assert_eq!(steps, 6, "3 processes x 2 primitives");
        assert_eq!(reg.peek(), 1, "round-robin loses updates identically");
        assert_eq!(rt.total_steps(), 6);
        for rec in d.history().ops() {
            assert_eq!(rec.returned(), 0);
            assert_eq!(rec.steps, 2);
            assert!(rec.resp.is_some());
        }
    }

    #[test]
    fn coop_crash_and_snapshot_semantics() {
        let rt = Runtime::coop(2);
        let mut d = Driver::coop(rt);
        let reg = Arc::new(Register::new(0));
        d.submit_task(0, OpSpec::inc(), RmwTask::new(reg.clone(), 1));
        d.submit_task(1, OpSpec::read(), RmwTask::new(reg.clone(), 0));

        assert_eq!(d.step(0), StepOutcome::Stepped); // read applied, parked at write
                                                     // Both in-flight ops surface as pending records: pid 0 one step
                                                     // in, pid 1 announced but never granted a step.
        let snap = d.history_snapshot();
        assert_eq!(snap.len(), 2);
        let by_pid = |p: usize| snap.ops().iter().find(|r| r.pid == p).unwrap().clone();
        assert_eq!(by_pid(0).resp, None);
        assert_eq!(by_pid(0).steps, 1);
        assert_eq!(by_pid(1).resp, None);
        assert_eq!(by_pid(1).steps, 0);

        d.crash(0);
        assert_eq!(d.history().len(), 1, "pending record surfaced by crash");
        assert_eq!(d.history().ops()[0].kind, OpKind::Inc { amount: 1 });
        assert!(!d.active_pids().contains(&0));

        d.run_solo(1);
        assert_eq!(d.completed_of(1), 1, "survivor unaffected");
    }

    #[test]
    fn coop_drop_finishes_suspended_ops() {
        let rt = Runtime::coop(1);
        let mut d = Driver::coop(rt);
        let reg = Arc::new(Register::new(10));
        d.submit_task(
            0,
            OpSpec::custom("two-steps", 0),
            RmwTask::new(reg.clone(), 1),
        );
        assert_eq!(d.step(0), StepOutcome::Stepped); // read 10, parked at write
        drop(d);
        assert_eq!(reg.peek(), 11, "suspended op completed at teardown");
    }

    #[test]
    fn coop_zero_step_tasks_complete_without_grants() {
        let rt = Runtime::coop(2);
        let mut d = Driver::coop(rt);
        d.submit_task(
            0,
            OpSpec::custom("noop", 0),
            crate::task::ImmediateOp::new(|_| 42),
        );
        d.crash(0);
        assert_eq!(d.completed_of(0), 1, "zero-primitive op completes");
        assert_eq!(d.history().len(), 1);
        assert!(d.history().ops()[0].resp.is_some());
        assert_eq!(d.history().ops()[0].returned(), 42);
    }

    #[test]
    fn coop_free_wait_all_completes_everything() {
        let rt = Runtime::coop_free(4);
        let mut d = Driver::coop_free(rt.clone());
        let reg = Arc::new(Register::new(0));
        for pid in 0..4 {
            d.submit_task(pid, OpSpec::custom("rmw", 0), RmwTask::new(reg.clone(), 1));
        }
        d.wait_all();
        assert_eq!(d.history().len(), 4);
        assert!(d.history().ops().iter().all(|r| r.resp.is_some()));
        assert_eq!(rt.total_steps(), 8, "4 processes x 2 primitives");
        // Batch order is ascending pid per round — exactly the gated
        // round-robin interleaving, which loses all but one update.
        assert_eq!(reg.peek(), 1);
        for rec in d.history().ops() {
            assert_eq!(rec.returned(), 0);
            assert_eq!(rec.steps, 2);
        }
    }

    #[test]
    fn coop_free_matches_gated_round_robin() {
        let gated = {
            let reg = Arc::new(Register::new(0));
            let mut d = Driver::coop(Runtime::coop(3));
            for pid in 0..3 {
                d.submit_task(pid, OpSpec::custom("rmw", 0), RmwTask::new(reg.clone(), 1));
            }
            d.run_schedule(&mut RoundRobin::new());
            (reg.peek(), d.take_history().sorted_by_invocation())
        };
        let free = {
            let reg = Arc::new(Register::new(0));
            let mut d = Driver::coop_free(Runtime::coop_free(3));
            for pid in 0..3 {
                d.submit_task(pid, OpSpec::custom("rmw", 0), RmwTask::new(reg.clone(), 1));
            }
            d.wait_all();
            (reg.peek(), d.take_history().sorted_by_invocation())
        };
        assert_eq!(gated.0, free.0, "shared memory diverged");
        assert_eq!(gated.1, free.1, "histories diverged");
    }

    #[test]
    fn coop_free_seeded_rounds_are_replayable() {
        let run = |seed: u64| -> (u64, Vec<u128>) {
            let reg = Arc::new(Register::new(0));
            let mut d = Driver::coop_free_seeded(Runtime::coop_free(8), seed);
            for pid in 0..8 {
                d.submit_task(pid, OpSpec::custom("rmw", 0), RmwTask::new(reg.clone(), 1));
            }
            d.wait_all();
            let h = d.take_history().sorted_by_invocation();
            (reg.peek(), h.iter().map(|r| r.returned()).collect())
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
    }

    #[test]
    fn coop_free_zero_step_ops_complete_without_rounds() {
        let rt = Runtime::coop_free(2);
        let mut d = Driver::coop_free(rt);
        d.submit_task(
            0,
            OpSpec::custom("noop", 0),
            crate::task::ImmediateOp::new(|_| 7),
        );
        d.wait_all();
        assert_eq!(d.history().len(), 1);
        assert_eq!(d.history().ops()[0].returned(), 7);
    }

    #[test]
    fn coop_free_supports_multiple_wait_all_batches() {
        let rt = Runtime::coop_free(2);
        let mut d = Driver::coop_free(rt);
        let reg = Arc::new(Register::new(0));
        for round in 0..3 {
            for pid in 0..2 {
                d.submit_task(
                    pid,
                    OpSpec::custom("rmw", round),
                    RmwTask::new(reg.clone(), 1),
                );
            }
            d.wait_all();
        }
        assert_eq!(d.history().len(), 6);
        assert!(d.active_pids().is_empty());
    }

    #[test]
    #[should_panic(expected = "crash() requires a gated runtime")]
    fn coop_free_rejects_crash() {
        let mut d = Driver::coop_free(Runtime::coop_free(2));
        d.crash(0);
    }

    #[test]
    #[should_panic(expected = "requires a gated coop runtime")]
    fn gated_coop_constructor_rejects_free_runtime() {
        let _ = Driver::coop(Runtime::coop_free(2));
    }

    #[test]
    #[should_panic(expected = "requires a free-running coop runtime")]
    fn free_coop_constructor_rejects_gated_runtime() {
        let _ = Driver::coop_free(Runtime::coop(2));
    }

    #[test]
    fn tasks_run_on_the_thread_backend_too() {
        let rt = Runtime::gated(2);
        let mut d = Driver::new(rt);
        let reg = Arc::new(Register::new(0));
        for pid in 0..2 {
            d.submit_task(pid, OpSpec::custom("rmw", 0), RmwTask::new(reg.clone(), 10));
        }
        let mut s = Scripted::new([0, 0, 1, 1]);
        d.run_schedule(&mut s);
        assert_eq!(reg.peek(), 20, "sequential task schedule loses nothing");
    }

    #[test]
    #[should_panic(expected = "exactly one primitive")]
    fn coop_detects_multi_primitive_polls() {
        struct Greedy {
            reg: Arc<Register>,
            primed: bool,
        }
        impl OpTask for Greedy {
            fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
                if !self.primed {
                    self.primed = true;
                    return Poll::Pending;
                }
                let v = self.reg.read(ctx);
                self.reg.write(ctx, v + 1); // second primitive: contract violation
                Poll::Ready(0)
            }
        }
        let rt = Runtime::coop(1);
        let mut d = Driver::coop(rt);
        d.submit_task(
            0,
            OpSpec::custom("greedy", 0),
            Greedy {
                reg: Arc::new(Register::new(0)),
                primed: false,
            },
        );
        let _ = d.step(0);
    }
}
