//! # counter — exact counters (the baselines)
//!
//! Wait-free linearizable *exact* counters, against which the paper's
//! k-multiplicative-accurate counter (Algorithm 1, crate `approx-objects`)
//! is compared.
//!
//! A **counter** supports `increment()` and `read()`; `read` returns the
//! number of increments that precede it.
//!
//! Implementations, spanning the complexity landscape the paper's
//! introduction surveys:
//!
//! * [`CollectCounter`] — one single-writer cell per process; `read`
//!   collects and sums. `O(1)` increments, `O(n)` reads. For unit
//!   increments the collect-sum is linearizable (the sum is monotone and
//!   moves by 1, so every value between the start-sum and end-sum is
//!   attained inside the read's window). This is the classic
//!   snapshot-style counter of the introduction's survey.
//! * [`SnapshotCounter`] — increments and reads go through a full
//!   Afek-et-al. single-writer atomic snapshot ([`AtomicSnapshot`]);
//!   `O(n²)` worst-case steps but yields an atomic *vector* view.
//! * [`AachCounter`] — the AACH monotone-circuit bounded counter: a binary
//!   tree of max registers over `n` leaves; `O(log n · log m)` increments
//!   and `O(log m)` reads for an `m`-bounded counter.
//! * [`UnboundedTreeCounter`] — the same tree over *unbounded* max
//!   registers: a long-lived polylog exact counter standing in for Baig
//!   et al. (DISC '19), the baseline §I-B compares against (see
//!   DESIGN.md's substitution notes).
//! * [`FaaCounter`] — a single `fetch&add` register. **Outside** the
//!   paper's primitive set (`fetch&add` is not historyless); included as
//!   the hardware baseline.
//! * [`LockCounter`] — mutex-based oracle for tests; charges no steps.

mod aach;
mod collect;
mod fetch_add;
mod reference;
mod snapshot;
mod spec;
pub mod tasks;
mod unbounded_tree;

pub use aach::{AachCounter, AachIncMachine, AachReadMachine};
pub use collect::CollectCounter;
pub use fetch_add::FaaCounter;
pub use reference::LockCounter;
pub use snapshot::{
    AtomicSnapshot, ScanMachine, SnapshotCounter, SnapshotIncMachine, SnapshotReadMachine,
    UpdateMachine,
};
pub use spec::Counter;
pub use tasks::{
    AachIncTask, AachReadTask, CollectIncTask, CollectReadTask, SnapshotIncTask, SnapshotReadTask,
    UnboundedTreeIncTask, UnboundedTreeReadTask,
};
pub use unbounded_tree::{UnboundedTreeCounter, UnboundedTreeIncMachine, UnboundedTreeReadMachine};
