//! An **unbounded** exact counter with polylogarithmic step complexity —
//! the long-lived baseline of the paper's §I-A/§I-B discussion.
//!
//! The paper positions Algorithm 1 against the long-lived exact counter
//! of Baig, Hendler, Milani & Travers (DISC '19): wait-free, read/write,
//! `O(log² n)` amortized steps for executions of arbitrary length. Their
//! construction is a full paper; as documented in DESIGN.md we substitute
//! the same *shape* with simpler parts: the AACH monotone-circuit tree
//! with every internal cache being an **unbounded** max register (the
//! level-doubling chain of [`maxreg::UnboundedMaxRegister`]), giving an
//! unbounded, long-lived exact counter at
//!
//! * `increment`: `O(log n · log v)` steps (`v` = current count);
//! * `read`: `O(log v)` steps.
//!
//! Polylogarithmic in the count rather than in `n` alone — enough to
//! exhibit §I-B's point: the best exact counters sit a logarithmic
//! factor above the relaxed counter's `O(1)` (EXP-T3.9 / EXP-LENGTH).

use crate::spec::Counter;
use maxreg::{UnboundedMaxRegister, UnboundedReadMachine, UnboundedWriteMachine};
use smr::{Poll, ProcCtx, Register};

/// An unbounded exact counter for `n` processes with polylog steps.
pub struct UnboundedTreeCounter {
    n: usize,
    p: usize,
    /// Heap-ordered internal nodes, indices `1..p`; node `v`'s children
    /// are `2v` and `2v+1`; leaves live at `p..2p`.
    inner: Vec<UnboundedMaxRegister>,
    /// Per-process exact counts (single-writer).
    leaves: Vec<Register>,
}

impl UnboundedTreeCounter {
    /// A counter for `n` processes; no capacity bound.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        let p = n.next_power_of_two();
        UnboundedTreeCounter {
            n,
            p,
            inner: (0..p).map(|_| UnboundedMaxRegister::new()).collect(),
            leaves: (0..n).map(|_| Register::new(0)).collect(),
        }
    }
}

impl Counter for UnboundedTreeCounter {
    fn increment(&self, ctx: &ProcCtx) {
        let mut m = UnboundedTreeIncMachine::new(self, ctx.pid());
        while m.step(self, ctx).is_pending() {}
    }

    fn read(&self, ctx: &ProcCtx) -> u128 {
        let mut m = UnboundedTreeReadMachine::new(self);
        loop {
            if let Poll::Ready(v) = m.step(self, ctx) {
                return v;
            }
        }
    }
}

/// Reading one heap slot: an embedded unbounded-register read for
/// internal nodes, a single register read for live leaves, nothing for
/// padding leaves.
#[derive(Debug)]
enum SlotRead {
    Inner(UnboundedReadMachine),
    Leaf,
    Padding,
}

impl SlotRead {
    fn new(c: &UnboundedTreeCounter, idx: usize) -> Self {
        if idx < c.p {
            SlotRead::Inner(UnboundedReadMachine::new(&c.inner[idx]))
        } else if idx - c.p < c.n {
            SlotRead::Leaf
        } else {
            SlotRead::Padding
        }
    }
}

/// Resume point of an `UnboundedTreeCounter::increment` — the AACH
/// ascent with every internal cache an unbounded max register. One
/// primitive per [`step`](UnboundedTreeIncMachine::step), priming step
/// free (the machine convention of `maxreg::tree`'s module docs);
/// padding-leaf slots and sub-machine priming are absorbed into the
/// surrounding step.
#[derive(Debug)]
pub struct UnboundedTreeIncMachine {
    pid: usize,
    phase: IncPhase,
}

#[derive(Debug)]
enum IncPhase {
    Start,
    ReadLeaf,
    WriteLeaf {
        mine: u64,
    },
    ReadSlot {
        node: usize,
        /// `false` while reading child `2·node`, `true` for `2·node+1`.
        right: bool,
        left_val: u64,
        sub: SlotRead,
    },
    WriteNode {
        node: usize,
        sub: UnboundedWriteMachine,
    },
}

impl UnboundedTreeIncMachine {
    /// A machine incrementing `counter` on behalf of process `pid`.
    pub fn new(_counter: &UnboundedTreeCounter, pid: usize) -> Self {
        UnboundedTreeIncMachine {
            pid,
            phase: IncPhase::Start,
        }
    }

    /// Advance the increment by at most one primitive against `counter`
    /// — which must be the counter the machine was created for.
    pub fn step(&mut self, c: &UnboundedTreeCounter, ctx: &ProcCtx) -> Poll<()> {
        loop {
            let before = ctx.steps_taken();
            match &mut self.phase {
                IncPhase::Start => {
                    self.phase = IncPhase::ReadLeaf;
                    return Poll::Pending; // priming step: no primitive
                }
                IncPhase::ReadLeaf => {
                    let mine = c.leaves[self.pid].read(ctx) + 1;
                    self.phase = IncPhase::WriteLeaf { mine };
                }
                IncPhase::WriteLeaf { mine } => {
                    c.leaves[self.pid].write(ctx, *mine);
                    if c.p == 1 {
                        return Poll::Ready(());
                    }
                    let node = (c.p + self.pid) / 2;
                    self.phase = IncPhase::ReadSlot {
                        node,
                        right: false,
                        left_val: 0,
                        sub: SlotRead::new(c, 2 * node),
                    };
                }
                IncPhase::ReadSlot {
                    node,
                    right,
                    left_val,
                    sub,
                } => {
                    let idx = 2 * *node + usize::from(*right);
                    let val = match sub {
                        SlotRead::Inner(m) => match m.step(&c.inner[idx], ctx) {
                            Poll::Pending => None,
                            Poll::Ready(v) => Some(v),
                        },
                        SlotRead::Leaf => Some(c.leaves[idx - c.p].read(ctx)),
                        SlotRead::Padding => Some(0),
                    };
                    if let Some(val) = val {
                        if !*right {
                            self.phase = IncPhase::ReadSlot {
                                node: *node,
                                right: true,
                                left_val: val,
                                sub: SlotRead::new(c, 2 * *node + 1),
                            };
                        } else {
                            let sum = *left_val + val;
                            self.phase = IncPhase::WriteNode {
                                node: *node,
                                sub: UnboundedWriteMachine::new(&c.inner[*node], sum),
                            };
                        }
                    }
                }
                IncPhase::WriteNode { node, sub } => {
                    if sub.step(&c.inner[*node], ctx).is_ready() {
                        if *node == 1 {
                            return Poll::Ready(());
                        }
                        let parent = *node / 2;
                        self.phase = IncPhase::ReadSlot {
                            node: parent,
                            right: false,
                            left_val: 0,
                            sub: SlotRead::new(c, 2 * parent),
                        };
                    }
                }
            }
            if ctx.steps_taken() != before {
                return Poll::Pending;
            }
        }
    }
}

/// Resume point of an `UnboundedTreeCounter::read`: the root unbounded
/// max register (or the single leaf when `n = 1`). Machine convention
/// as in [`UnboundedTreeIncMachine`].
#[derive(Debug)]
pub struct UnboundedTreeReadMachine {
    /// `n = 1`: the single leaf is the whole tree (one register read).
    leaf: bool,
    root: Option<UnboundedReadMachine>,
    primed: bool,
}

impl UnboundedTreeReadMachine {
    /// A machine reading `counter`.
    pub fn new(counter: &UnboundedTreeCounter) -> Self {
        let leaf = counter.p == 1;
        UnboundedTreeReadMachine {
            leaf,
            root: (!leaf).then(|| UnboundedReadMachine::new(&counter.inner[1])),
            primed: false,
        }
    }

    /// Advance the read by at most one primitive against `counter` —
    /// which must be the counter the machine was created for.
    pub fn step(&mut self, c: &UnboundedTreeCounter, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending; // a read always applies a primitive
        }
        if self.leaf {
            return Poll::Ready(u128::from(c.leaves[0].read(ctx)));
        }
        let m = self.root.as_mut().expect("root machine for p > 1");
        loop {
            let before = ctx.steps_taken();
            if let Poll::Ready(v) = m.step(&c.inner[1], ctx) {
                return Poll::Ready(u128::from(v));
            }
            if ctx.steps_taken() != before {
                return Poll::Pending;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn sequential_conformance() {
        for n in [1usize, 2, 3, 6] {
            let c = UnboundedTreeCounter::new(n);
            testutil::check_sequential_exact(&c, 80);
        }
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Arc::new(UnboundedTreeCounter::new(6));
        testutil::check_concurrent_exact(c, 6, 400);
    }

    #[test]
    fn no_capacity_bound() {
        // Unlike AachCounter, large counts need no pre-declared m.
        let rt = Runtime::free_running(1);
        let c = UnboundedTreeCounter::new(1);
        let ctx = rt.ctx(0);
        for _ in 0..100_000u64 {
            c.increment(&ctx);
        }
        assert_eq!(c.read(&ctx), 100_000);
    }

    #[test]
    fn read_cost_scales_with_count_not_n() {
        let n = 32;
        let rt = Runtime::free_running(n);
        let c = UnboundedTreeCounter::new(n);
        let ctx = rt.ctx(0);
        for _ in 0..100 {
            c.increment(&ctx);
        }
        let s0 = ctx.steps_taken();
        let _ = c.read(&ctx);
        let cost = ctx.steps_taken() - s0;
        // Root is an unbounded max register holding ~100: its read costs
        // O(log v) ≈ pointer (3 levels) + level-3 tree (8 bits), far
        // below n = 32.
        assert!(cost <= 16, "read cost {cost}");
    }

    #[test]
    fn increment_cost_is_polylog() {
        let n = 16;
        let rt = Runtime::free_running(n);
        let c = UnboundedTreeCounter::new(n);
        let ctx = rt.ctx(0);
        for _ in 0..1_000u64 {
            c.increment(&ctx);
        }
        let amortized = ctx.steps_taken() as f64 / 1_000.0;
        // log2(n)=4 levels × (2 reads + 1 write) × O(log v ≈ 10 + ptr).
        assert!(amortized < 250.0, "amortized {amortized}");
        assert!(amortized > 4.0, "suspiciously cheap for an exact tree");
    }
}
