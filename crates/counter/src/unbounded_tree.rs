//! An **unbounded** exact counter with polylogarithmic step complexity —
//! the long-lived baseline of the paper's §I-A/§I-B discussion.
//!
//! The paper positions Algorithm 1 against the long-lived exact counter
//! of Baig, Hendler, Milani & Travers (DISC '19): wait-free, read/write,
//! `O(log² n)` amortized steps for executions of arbitrary length. Their
//! construction is a full paper; as documented in DESIGN.md we substitute
//! the same *shape* with simpler parts: the AACH monotone-circuit tree
//! with every internal cache being an **unbounded** max register (the
//! level-doubling chain of [`maxreg::UnboundedMaxRegister`]), giving an
//! unbounded, long-lived exact counter at
//!
//! * `increment`: `O(log n · log v)` steps (`v` = current count);
//! * `read`: `O(log v)` steps.
//!
//! Polylogarithmic in the count rather than in `n` alone — enough to
//! exhibit §I-B's point: the best exact counters sit a logarithmic
//! factor above the relaxed counter's `O(1)` (EXP-T3.9 / EXP-LENGTH).

use crate::spec::Counter;
use maxreg::{MaxRegister, UnboundedMaxRegister};
use smr::{ProcCtx, Register};

/// An unbounded exact counter for `n` processes with polylog steps.
pub struct UnboundedTreeCounter {
    n: usize,
    p: usize,
    /// Heap-ordered internal nodes, indices `1..p`; node `v`'s children
    /// are `2v` and `2v+1`; leaves live at `p..2p`.
    inner: Vec<UnboundedMaxRegister>,
    /// Per-process exact counts (single-writer).
    leaves: Vec<Register>,
}

impl UnboundedTreeCounter {
    /// A counter for `n` processes; no capacity bound.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        let p = n.next_power_of_two();
        UnboundedTreeCounter {
            n,
            p,
            inner: (0..p).map(|_| UnboundedMaxRegister::new()).collect(),
            leaves: (0..n).map(|_| Register::new(0)).collect(),
        }
    }

    fn slot_value(&self, ctx: &ProcCtx, idx: usize) -> u64 {
        if idx < self.p {
            self.inner[idx].read(ctx)
        } else {
            let leaf = idx - self.p;
            if leaf < self.n {
                self.leaves[leaf].read(ctx)
            } else {
                0
            }
        }
    }
}

impl Counter for UnboundedTreeCounter {
    fn increment(&self, ctx: &ProcCtx) {
        let pid = ctx.pid();
        let leaf = &self.leaves[pid];
        let mine = leaf.read(ctx) + 1;
        leaf.write(ctx, mine);
        if self.p == 1 {
            return;
        }
        let mut node = (self.p + pid) / 2;
        while node >= 1 {
            let sum = self.slot_value(ctx, 2 * node) + self.slot_value(ctx, 2 * node + 1);
            self.inner[node].write(ctx, sum);
            if node == 1 {
                break;
            }
            node /= 2;
        }
    }

    fn read(&self, ctx: &ProcCtx) -> u128 {
        if self.p == 1 {
            u128::from(self.leaves[0].read(ctx))
        } else {
            u128::from(self.inner[1].read(ctx))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn sequential_conformance() {
        for n in [1usize, 2, 3, 6] {
            let c = UnboundedTreeCounter::new(n);
            testutil::check_sequential_exact(&c, 80);
        }
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Arc::new(UnboundedTreeCounter::new(6));
        testutil::check_concurrent_exact(c, 6, 400);
    }

    #[test]
    fn no_capacity_bound() {
        // Unlike AachCounter, large counts need no pre-declared m.
        let rt = Runtime::free_running(1);
        let c = UnboundedTreeCounter::new(1);
        let ctx = rt.ctx(0);
        for _ in 0..100_000u64 {
            c.increment(&ctx);
        }
        assert_eq!(c.read(&ctx), 100_000);
    }

    #[test]
    fn read_cost_scales_with_count_not_n() {
        let n = 32;
        let rt = Runtime::free_running(n);
        let c = UnboundedTreeCounter::new(n);
        let ctx = rt.ctx(0);
        for _ in 0..100 {
            c.increment(&ctx);
        }
        let s0 = ctx.steps_taken();
        let _ = c.read(&ctx);
        let cost = ctx.steps_taken() - s0;
        // Root is an unbounded max register holding ~100: its read costs
        // O(log v) ≈ pointer (3 levels) + level-3 tree (8 bits), far
        // below n = 32.
        assert!(cost <= 16, "read cost {cost}");
    }

    #[test]
    fn increment_cost_is_polylog() {
        let n = 16;
        let rt = Runtime::free_running(n);
        let c = UnboundedTreeCounter::new(n);
        let ctx = rt.ctx(0);
        for _ in 0..1_000u64 {
            c.increment(&ctx);
        }
        let amortized = ctx.steps_taken() as f64 / 1_000.0;
        // log2(n)=4 levels × (2 reads + 1 write) × O(log v ≈ 10 + ptr).
        assert!(amortized < 250.0, "amortized {amortized}");
        assert!(amortized > 4.0, "suspiciously cheap for an exact tree");
    }
}
