//! The AACH monotone-circuit bounded counter.
//!
//! A binary tree with one leaf per process. A leaf holds the (exact,
//! single-writer) count of its process; every internal node is an
//! `m`-bounded [`TreeMaxRegister`] caching the sum of its subtree. Since
//! counts only grow, subtree sums only grow, so writing a freshly computed
//! sum into a *max* register never regresses the cached value — this is
//! the monotone-circuit idea of Aspnes, Attiya and Censor-Hillel.
//!
//! * `increment`: bump the own leaf, then recompute and max-write every
//!   ancestor — `O(log n)` nodes, each costing `O(log m)` primitives,
//!   i.e. `O(log n · log m)`.
//! * `read`: read the root max register — `O(log m)`.
//!
//! With `m` polynomial in the number of operations this is the
//! polylogarithmic exact counter the paper's introduction quotes; its
//! step complexity degrades to the `Ω(n)` JTT bound only when executions
//! are unboundedly long (the paper's §I-A discussion).

use crate::spec::Counter;
use maxreg::{TreeMaxRegister, TreeReadMachine, TreeWriteMachine};
use smr::{Poll, ProcCtx, Register};

/// An `m`-bounded exact counter for `n` processes with
/// `O(log n · log m)` increments and `O(log m)` reads.
pub struct AachCounter {
    n: usize,
    /// Leaf padding: the tree has `p = n.next_power_of_two()` leaf slots.
    p: usize,
    bound: u64,
    /// Heap-ordered internal nodes, indices `1..p` (index 0 unused).
    /// Node `v`'s children are `2v` and `2v+1`; leaves live at `p..2p`.
    inner: Vec<TreeMaxRegister>,
    /// Per-process exact counts (single-writer).
    leaves: Vec<Register>,
}

impl AachCounter {
    /// A counter for `n` processes supporting at most `m − 1` increments.
    pub fn new(n: usize, m: u64) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(m > 1, "bound must exceed 1");
        let p = n.next_power_of_two();
        AachCounter {
            n,
            p,
            bound: m,
            inner: (0..p).map(|_| TreeMaxRegister::new(m)).collect(),
            leaves: (0..n).map(|_| Register::new(0)).collect(),
        }
    }

    /// The capacity bound `m` (the counter counts up to `m − 1`).
    pub fn m(&self) -> u64 {
        self.bound
    }
}

impl Counter for AachCounter {
    fn increment(&self, ctx: &ProcCtx) {
        let mut m = AachIncMachine::new(self, ctx.pid());
        while m.step(self, ctx).is_pending() {}
    }

    fn read(&self, ctx: &ProcCtx) -> u128 {
        let mut m = AachReadMachine::new(self);
        loop {
            if let Poll::Ready(v) = m.step(self, ctx) {
                return v;
            }
        }
    }
}

/// Reading one heap slot: an embedded tree-register read for internal
/// nodes, a single register read for live leaves, and nothing at all
/// for padding leaves (their value is 0 by construction).
#[derive(Debug)]
enum SlotRead {
    Inner(TreeReadMachine),
    Leaf,
    Padding,
}

impl SlotRead {
    fn new(c: &AachCounter, idx: usize) -> Self {
        if idx < c.p {
            SlotRead::Inner(TreeReadMachine::new(&c.inner[idx]))
        } else if idx - c.p < c.n {
            SlotRead::Leaf
        } else {
            SlotRead::Padding
        }
    }
}

/// Resume point of an `AachCounter::increment`: bump the own leaf (one
/// read, one write), then for every ancestor read both child slots and
/// max-write the sum — each slot access an embedded [`TreeReadMachine`]
/// / [`TreeWriteMachine`]. One primitive per
/// [`step`](AachIncMachine::step), priming step free (the machine
/// convention of `maxreg::tree`'s module docs); padding-leaf slots and
/// sub-machine priming are absorbed into the surrounding step.
#[derive(Debug)]
pub struct AachIncMachine {
    pid: usize,
    phase: AachIncPhase,
}

#[derive(Debug)]
enum AachIncPhase {
    Start,
    ReadLeaf,
    WriteLeaf {
        mine: u64,
    },
    ReadSlot {
        node: usize,
        /// `false` while reading child `2·node`, `true` for `2·node+1`.
        right: bool,
        left_val: u64,
        sub: SlotRead,
    },
    WriteNode {
        node: usize,
        sub: TreeWriteMachine,
    },
}

impl AachIncMachine {
    /// A machine incrementing `counter` on behalf of process `pid`.
    pub fn new(_counter: &AachCounter, pid: usize) -> Self {
        AachIncMachine {
            pid,
            phase: AachIncPhase::Start,
        }
    }

    /// Advance the increment by at most one primitive against `counter`
    /// — which must be the counter the machine was created for.
    pub fn step(&mut self, c: &AachCounter, ctx: &ProcCtx) -> Poll<()> {
        loop {
            let before = ctx.steps_taken();
            match &mut self.phase {
                AachIncPhase::Start => {
                    self.phase = AachIncPhase::ReadLeaf;
                    return Poll::Pending; // priming step: no primitive
                }
                AachIncPhase::ReadLeaf => {
                    let mine = c.leaves[self.pid].read(ctx) + 1;
                    assert!(
                        mine < c.bound,
                        "counter capacity (m = {}) exceeded",
                        c.bound
                    );
                    self.phase = AachIncPhase::WriteLeaf { mine };
                }
                AachIncPhase::WriteLeaf { mine } => {
                    c.leaves[self.pid].write(ctx, *mine);
                    if c.p == 1 {
                        return Poll::Ready(()); // the leaf is the whole tree
                    }
                    let node = (c.p + self.pid) / 2;
                    self.phase = AachIncPhase::ReadSlot {
                        node,
                        right: false,
                        left_val: 0,
                        sub: SlotRead::new(c, 2 * node),
                    };
                }
                AachIncPhase::ReadSlot {
                    node,
                    right,
                    left_val,
                    sub,
                } => {
                    let idx = 2 * *node + usize::from(*right);
                    let val = match sub {
                        SlotRead::Inner(m) => match m.step(&c.inner[idx], ctx) {
                            Poll::Pending => None,
                            Poll::Ready(v) => Some(v),
                        },
                        SlotRead::Leaf => Some(c.leaves[idx - c.p].read(ctx)),
                        SlotRead::Padding => Some(0),
                    };
                    if let Some(val) = val {
                        if !*right {
                            self.phase = AachIncPhase::ReadSlot {
                                node: *node,
                                right: true,
                                left_val: val,
                                sub: SlotRead::new(c, 2 * *node + 1),
                            };
                        } else {
                            let sum = *left_val + val;
                            assert!(sum < c.bound, "counter capacity (m = {}) exceeded", c.bound);
                            self.phase = AachIncPhase::WriteNode {
                                node: *node,
                                sub: TreeWriteMachine::new(&c.inner[*node], sum),
                            };
                        }
                    }
                }
                AachIncPhase::WriteNode { node, sub } => {
                    if sub.step(&c.inner[*node], ctx).is_ready() {
                        if *node == 1 {
                            return Poll::Ready(());
                        }
                        let parent = *node / 2;
                        self.phase = AachIncPhase::ReadSlot {
                            node: parent,
                            right: false,
                            left_val: 0,
                            sub: SlotRead::new(c, 2 * parent),
                        };
                    }
                }
            }
            if ctx.steps_taken() != before {
                return Poll::Pending;
            }
        }
    }
}

/// Resume point of an `AachCounter::read`: the root max register (or
/// the single leaf when `n = 1`). Machine convention as in
/// [`AachIncMachine`].
#[derive(Debug)]
pub struct AachReadMachine {
    /// `n = 1`: the single leaf is the whole tree (one register read).
    leaf: bool,
    root: Option<TreeReadMachine>,
    primed: bool,
}

impl AachReadMachine {
    /// A machine reading `counter`.
    pub fn new(counter: &AachCounter) -> Self {
        let leaf = counter.p == 1;
        AachReadMachine {
            leaf,
            root: (!leaf).then(|| TreeReadMachine::new(&counter.inner[1])),
            primed: false,
        }
    }

    /// Advance the read by at most one primitive against `counter` —
    /// which must be the counter the machine was created for.
    pub fn step(&mut self, c: &AachCounter, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending; // a read always applies a primitive
        }
        if self.leaf {
            return Poll::Ready(u128::from(c.leaves[0].read(ctx)));
        }
        let m = self.root.as_mut().expect("root machine for p > 1");
        loop {
            let before = ctx.steps_taken();
            if let Poll::Ready(v) = m.step(&c.inner[1], ctx) {
                return Poll::Ready(u128::from(v));
            }
            if ctx.steps_taken() != before {
                return Poll::Pending;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn sequential_conformance() {
        for n in [1usize, 2, 3, 5, 8] {
            let c = AachCounter::new(n, 1 << 20);
            testutil::check_sequential_exact(&c, 60);
        }
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Arc::new(AachCounter::new(6, 1 << 20));
        testutil::check_concurrent_exact(c, 6, 500);
    }

    #[test]
    fn read_cost_is_log_m_not_n() {
        let n = 32;
        let m = 1 << 16;
        let rt = Runtime::free_running(n);
        let c = AachCounter::new(n, m);
        let ctx = rt.ctx(0);
        c.increment(&ctx);
        let s0 = ctx.steps_taken();
        let _ = c.read(&ctx);
        let read_steps = ctx.steps_taken() - s0;
        assert!(
            read_steps <= 16 + 1,
            "root read is O(log m), got {read_steps}"
        );
    }

    #[test]
    fn increment_cost_is_log_n_log_m() {
        let n = 16;
        let m = 1 << 16;
        let rt = Runtime::free_running(n);
        let c = AachCounter::new(n, m);
        let ctx = rt.ctx(7);
        let s0 = ctx.steps_taken();
        c.increment(&ctx);
        let steps = ctx.steps_taken() - s0;
        // 2 leaf ops + log2(n)=4 levels x (2 child reads + 1 write), each
        // O(log2 m)=16 with small constants.
        let budget = 2 + 4 * 3 * (16 + 1);
        assert!(steps <= budget, "increment took {steps}, budget {budget}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn overflow_is_rejected() {
        let c = AachCounter::new(1, 4);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        for _ in 0..4 {
            c.increment(&ctx);
        }
    }
}
