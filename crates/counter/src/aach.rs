//! The AACH monotone-circuit bounded counter.
//!
//! A binary tree with one leaf per process. A leaf holds the (exact,
//! single-writer) count of its process; every internal node is an
//! `m`-bounded [`TreeMaxRegister`] caching the sum of its subtree. Since
//! counts only grow, subtree sums only grow, so writing a freshly computed
//! sum into a *max* register never regresses the cached value — this is
//! the monotone-circuit idea of Aspnes, Attiya and Censor-Hillel.
//!
//! * `increment`: bump the own leaf, then recompute and max-write every
//!   ancestor — `O(log n)` nodes, each costing `O(log m)` primitives,
//!   i.e. `O(log n · log m)`.
//! * `read`: read the root max register — `O(log m)`.
//!
//! With `m` polynomial in the number of operations this is the
//! polylogarithmic exact counter the paper's introduction quotes; its
//! step complexity degrades to the `Ω(n)` JTT bound only when executions
//! are unboundedly long (the paper's §I-A discussion).

use crate::spec::Counter;
use maxreg::{MaxRegister, TreeMaxRegister};
use smr::{ProcCtx, Register};

/// An `m`-bounded exact counter for `n` processes with
/// `O(log n · log m)` increments and `O(log m)` reads.
pub struct AachCounter {
    n: usize,
    /// Leaf padding: the tree has `p = n.next_power_of_two()` leaf slots.
    p: usize,
    bound: u64,
    /// Heap-ordered internal nodes, indices `1..p` (index 0 unused).
    /// Node `v`'s children are `2v` and `2v+1`; leaves live at `p..2p`.
    inner: Vec<TreeMaxRegister>,
    /// Per-process exact counts (single-writer).
    leaves: Vec<Register>,
}

impl AachCounter {
    /// A counter for `n` processes supporting at most `m − 1` increments.
    pub fn new(n: usize, m: u64) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(m > 1, "bound must exceed 1");
        let p = n.next_power_of_two();
        AachCounter {
            n,
            p,
            bound: m,
            inner: (0..p).map(|_| TreeMaxRegister::new(m)).collect(),
            leaves: (0..n).map(|_| Register::new(0)).collect(),
        }
    }

    /// The capacity bound `m` (the counter counts up to `m − 1`).
    pub fn m(&self) -> u64 {
        self.bound
    }

    /// Value of heap slot `idx` (`1 ≤ idx < 2p`): an internal max
    /// register, a live leaf, or 0 for a padding leaf.
    fn slot_value(&self, ctx: &ProcCtx, idx: usize) -> u64 {
        if idx < self.p {
            self.inner[idx].read(ctx)
        } else {
            let leaf = idx - self.p;
            if leaf < self.n {
                self.leaves[leaf].read(ctx)
            } else {
                0
            }
        }
    }
}

impl Counter for AachCounter {
    fn increment(&self, ctx: &ProcCtx) {
        let pid = ctx.pid();
        let leaf = &self.leaves[pid];
        let mine = leaf.read(ctx) + 1;
        assert!(
            mine < self.bound,
            "counter capacity (m = {}) exceeded",
            self.bound
        );
        leaf.write(ctx, mine);
        if self.p == 1 {
            return; // single process: the leaf is the whole tree
        }
        let mut node = (self.p + pid) / 2;
        while node >= 1 {
            let sum = self.slot_value(ctx, 2 * node) + self.slot_value(ctx, 2 * node + 1);
            assert!(
                sum < self.bound,
                "counter capacity (m = {}) exceeded",
                self.bound
            );
            self.inner[node].write(ctx, sum);
            if node == 1 {
                break;
            }
            node /= 2;
        }
    }

    fn read(&self, ctx: &ProcCtx) -> u128 {
        if self.p == 1 {
            u128::from(self.leaves[0].read(ctx))
        } else {
            u128::from(self.inner[1].read(ctx))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn sequential_conformance() {
        for n in [1usize, 2, 3, 5, 8] {
            let c = AachCounter::new(n, 1 << 20);
            testutil::check_sequential_exact(&c, 60);
        }
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Arc::new(AachCounter::new(6, 1 << 20));
        testutil::check_concurrent_exact(c, 6, 500);
    }

    #[test]
    fn read_cost_is_log_m_not_n() {
        let n = 32;
        let m = 1 << 16;
        let rt = Runtime::free_running(n);
        let c = AachCounter::new(n, m);
        let ctx = rt.ctx(0);
        c.increment(&ctx);
        let s0 = ctx.steps_taken();
        let _ = c.read(&ctx);
        let read_steps = ctx.steps_taken() - s0;
        assert!(
            read_steps <= 16 + 1,
            "root read is O(log m), got {read_steps}"
        );
    }

    #[test]
    fn increment_cost_is_log_n_log_m() {
        let n = 16;
        let m = 1 << 16;
        let rt = Runtime::free_running(n);
        let c = AachCounter::new(n, m);
        let ctx = rt.ctx(7);
        let s0 = ctx.steps_taken();
        c.increment(&ctx);
        let steps = ctx.steps_taken() - s0;
        // 2 leaf ops + log2(n)=4 levels x (2 child reads + 1 write), each
        // O(log2 m)=16 with small constants.
        let budget = 2 + 4 * 3 * (16 + 1);
        assert!(steps <= budget, "increment took {steps}, budget {budget}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn overflow_is_rejected() {
        let c = AachCounter::new(1, 4);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        for _ in 0..4 {
            c.increment(&ctx);
        }
    }
}
