//! The collect counter: single-writer cells + sum.
//!
//! `increment` bumps the invoking process's own cell (`read` + `write`,
//! two steps — the cell is single-writer so the pair cannot lose
//! updates); `read` collects all `n` cells and returns their sum.
//!
//! Linearizability for unit increments: let `S₀` be the sum of completed
//! increments when a read begins and `S₁` the sum of started increments
//! when it ends. The collected sum lies in `[S₀, S₁]`, and since the true
//! count is monotone and changes by 1, every value in that interval is the
//! true count at some instant inside the read's window — a valid
//! linearization point.

use crate::spec::Counter;
use smr::{ProcCtx, Register};

/// An exact counter with `O(1)` increments and `O(n)` reads.
pub struct CollectCounter {
    cells: Vec<Register>,
}

impl CollectCounter {
    /// A counter for `n` processes.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        CollectCounter {
            cells: (0..n).map(|_| Register::new(0)).collect(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.cells.len()
    }

    /// Cell `i` — for the task forms in [`tasks`](crate::tasks), which
    /// walk the cells one primitive per poll.
    pub(crate) fn cell(&self, i: usize) -> &Register {
        &self.cells[i]
    }
}

impl Counter for CollectCounter {
    fn increment(&self, ctx: &ProcCtx) {
        let cell = &self.cells[ctx.pid()];
        let v = cell.read(ctx);
        cell.write(ctx, v + 1);
    }

    fn read(&self, ctx: &ProcCtx) -> u128 {
        self.cells.iter().map(|c| u128::from(c.read(ctx))).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn sequential_conformance() {
        let c = CollectCounter::new(1);
        testutil::check_sequential_exact(&c, 100);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Arc::new(CollectCounter::new(8));
        testutil::check_concurrent_exact(c, 8, 1_000);
    }

    #[test]
    fn step_costs() {
        let n = 12;
        let rt = Runtime::free_running(n);
        let c = CollectCounter::new(n);
        let ctx = rt.ctx(5);
        let s0 = ctx.steps_taken();
        c.increment(&ctx);
        assert_eq!(ctx.steps_taken() - s0, 2, "increment: 2 steps");
        let s0 = ctx.steps_taken();
        let _ = c.read(&ctx);
        assert_eq!(ctx.steps_taken() - s0, n as u64, "read: n steps");
    }
}
