//! The Afek et al. single-writer atomic snapshot, and a counter on top.
//!
//! [`AtomicSnapshot`] implements the classic wait-free construction
//! (Afek, Attiya, Dolev, Gafni, Merritt, Shavit, *Atomic snapshots of
//! shared memory*, J. ACM 1993): each segment stores `(value, seq,
//! embedded view)`. A `scan` repeatedly double-collects; if the two
//! collects agree on all sequence numbers it returns the collected values,
//! and if some process is observed to move **twice**, its embedded view —
//! a scan that completed entirely within our own scan's window — is
//! returned instead. At most `n+1` collects, so `O(n²)` steps worst case.
//!
//! [`SnapshotCounter`] is the textbook exact counter on top: `increment`
//! bumps the invoker's segment; `read` scans and sums. It is the "wait-free
//! exact counter from atomic snapshot" of the paper's introduction.

use crate::spec::Counter;
use smr::{Poll, ProcCtx, WideRegister};

/// One snapshot segment: the process's value, its update count and the
/// view it embedded at its last update.
#[derive(Debug, Clone, Default)]
struct Segment {
    value: u64,
    seq: u64,
    view: Vec<u64>,
}

/// A wait-free single-writer atomic snapshot over `n` `u64` components.
pub struct AtomicSnapshot {
    segments: Vec<WideRegister<Segment>>,
}

impl AtomicSnapshot {
    /// A snapshot object with `n` components, all initially 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        AtomicSnapshot {
            segments: (0..n).map(|_| WideRegister::default()).collect(),
        }
    }

    /// Number of components.
    pub fn n(&self) -> usize {
        self.segments.len()
    }

    /// Wait-free atomic scan: a vector of all components that was
    /// simultaneously present at some instant within this call.
    pub fn scan(&self, ctx: &ProcCtx) -> Vec<u64> {
        let mut m = ScanMachine::new(self);
        loop {
            if let Poll::Ready(view) = m.step(self, ctx) {
                return view;
            }
        }
    }

    /// Wait-free update of the invoking process's component.
    pub fn update(&self, ctx: &ProcCtx, value: u64) {
        let mut m = UpdateMachine::new(self, value);
        while m.step(self, ctx).is_pending() {}
    }

    /// Current value of the invoking process's own component (one step).
    pub fn my_value(&self, ctx: &ProcCtx) -> u64 {
        self.segments[ctx.pid()].read(ctx).value
    }
}

/// Resume point of an [`AtomicSnapshot::scan`]: repeated collects, one
/// segment read per [`step`](ScanMachine::step), priming step free —
/// the machine convention of `maxreg::tree`'s module docs. The single
/// transcription driven by the blocking method and embedded by the
/// [`SnapshotCounter`] machines.
#[derive(Debug)]
pub struct ScanMachine {
    /// Previous collect, once one completed.
    prev: Option<Vec<Segment>>,
    /// The collect in progress.
    cur: Vec<Segment>,
    /// Per-process observed movement counts.
    moved: Vec<u32>,
    primed: bool,
}

impl ScanMachine {
    /// A machine scanning `snap`.
    pub fn new(snap: &AtomicSnapshot) -> Self {
        ScanMachine {
            prev: None,
            cur: Vec::with_capacity(snap.n()),
            moved: vec![0; snap.n()],
            primed: false,
        }
    }

    /// Advance the scan by at most one primitive against `snap` — which
    /// must be the snapshot the machine was created for.
    pub fn step(&mut self, snap: &AtomicSnapshot, ctx: &ProcCtx) -> Poll<Vec<u64>> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending; // a scan always reads at least 2n segments
        }
        self.cur.push(snap.segments[self.cur.len()].read(ctx));
        if self.cur.len() < snap.n() {
            return Poll::Pending;
        }
        // A collect just completed.
        let b = std::mem::take(&mut self.cur);
        let Some(a) = self.prev.take() else {
            self.prev = Some(b);
            return Poll::Pending;
        };
        if a.iter().zip(&b).all(|(x, y)| x.seq == y.seq) {
            return Poll::Ready(b.into_iter().map(|s| s.value).collect());
        }
        for j in 0..snap.n() {
            if a[j].seq != b[j].seq {
                self.moved[j] += 1;
                if self.moved[j] >= 2 {
                    // j completed an update that started after our scan
                    // began; its embedded view is linearizable within
                    // our window.
                    return Poll::Ready(b[j].view.clone());
                }
            }
        }
        self.prev = Some(b);
        Poll::Pending
    }
}

/// Resume point of an [`AtomicSnapshot::update`]: an embedded scan,
/// then the own segment's read and write. Same machine convention as
/// [`ScanMachine`].
#[derive(Debug)]
pub struct UpdateMachine {
    value: u64,
    phase: UpdatePhase,
    primed: bool,
}

#[derive(Debug)]
enum UpdatePhase {
    Scan(ScanMachine),
    ReadOwn { view: Vec<u64> },
    WriteOwn { view: Vec<u64>, seq: u64 },
}

impl UpdateMachine {
    /// A machine updating the invoking process's component of `snap` to
    /// `value`.
    pub fn new(snap: &AtomicSnapshot, value: u64) -> Self {
        UpdateMachine {
            value,
            phase: UpdatePhase::Scan(ScanMachine::new(snap)),
            primed: false,
        }
    }

    /// Advance the update by at most one primitive against `snap` —
    /// which must be the snapshot the machine was created for.
    pub fn step(&mut self, snap: &AtomicSnapshot, ctx: &ProcCtx) -> Poll<()> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending; // the embedded scan applies primitives
        }
        // Each iteration applies at most one primitive; iterations that
        // applied none (a sub-machine's free priming step, a local phase
        // change) continue within the current step.
        loop {
            let before = ctx.steps_taken();
            match &mut self.phase {
                UpdatePhase::Scan(m) => {
                    if let Poll::Ready(view) = m.step(snap, ctx) {
                        self.phase = UpdatePhase::ReadOwn { view };
                    }
                }
                UpdatePhase::ReadOwn { view } => {
                    let old = snap.segments[ctx.pid()].read(ctx);
                    self.phase = UpdatePhase::WriteOwn {
                        view: std::mem::take(view),
                        seq: old.seq + 1,
                    };
                }
                UpdatePhase::WriteOwn { view, seq } => {
                    snap.segments[ctx.pid()].write(
                        ctx,
                        Segment {
                            value: self.value,
                            seq: *seq,
                            view: std::mem::take(view),
                        },
                    );
                    return Poll::Ready(());
                }
            }
            if ctx.steps_taken() != before {
                return Poll::Pending;
            }
        }
    }
}

/// The classic exact counter from an atomic snapshot: `O(n)`-ish
/// increments (one scan) and `O(n²)` worst-case reads.
pub struct SnapshotCounter {
    snap: AtomicSnapshot,
}

impl SnapshotCounter {
    /// A counter for `n` processes.
    pub fn new(n: usize) -> Self {
        SnapshotCounter {
            snap: AtomicSnapshot::new(n),
        }
    }
}

impl Counter for SnapshotCounter {
    fn increment(&self, ctx: &ProcCtx) {
        let mut m = SnapshotIncMachine::new(self);
        while m.step(self, ctx).is_pending() {}
    }

    fn read(&self, ctx: &ProcCtx) -> u128 {
        let mut m = SnapshotReadMachine::new(self);
        loop {
            if let Poll::Ready(v) = m.step(self, ctx) {
                return v;
            }
        }
    }
}

/// Resume point of a `SnapshotCounter::increment`: read the own
/// component, then run the embedded [`UpdateMachine`] with the bumped
/// value. Machine convention as in [`ScanMachine`].
#[derive(Debug)]
pub struct SnapshotIncMachine {
    phase: SnapIncPhase,
}

#[derive(Debug)]
enum SnapIncPhase {
    Start,
    ReadMine,
    Update(UpdateMachine),
}

impl SnapshotIncMachine {
    /// A machine incrementing `counter`.
    pub fn new(_counter: &SnapshotCounter) -> Self {
        SnapshotIncMachine {
            phase: SnapIncPhase::Start,
        }
    }

    /// Advance the increment by at most one primitive against `counter`
    /// — which must be the counter the machine was created for.
    pub fn step(&mut self, counter: &SnapshotCounter, ctx: &ProcCtx) -> Poll<()> {
        loop {
            let before = ctx.steps_taken();
            match &mut self.phase {
                SnapIncPhase::Start => {
                    self.phase = SnapIncPhase::ReadMine;
                    return Poll::Pending; // priming step: no primitive
                }
                SnapIncPhase::ReadMine => {
                    let mine = counter.snap.my_value(ctx);
                    self.phase = SnapIncPhase::Update(UpdateMachine::new(&counter.snap, mine + 1));
                }
                SnapIncPhase::Update(m) => {
                    if m.step(&counter.snap, ctx).is_ready() {
                        return Poll::Ready(());
                    }
                }
            }
            if ctx.steps_taken() != before {
                return Poll::Pending;
            }
        }
    }
}

/// Resume point of a `SnapshotCounter::read`: an embedded scan, summed.
/// Machine convention as in [`ScanMachine`].
#[derive(Debug)]
pub struct SnapshotReadMachine {
    scan: ScanMachine,
    primed: bool,
}

impl SnapshotReadMachine {
    /// A machine reading `counter`.
    pub fn new(counter: &SnapshotCounter) -> Self {
        SnapshotReadMachine {
            scan: ScanMachine::new(&counter.snap),
            primed: false,
        }
    }

    /// Advance the read by at most one primitive against `counter` —
    /// which must be the counter the machine was created for.
    pub fn step(&mut self, counter: &SnapshotCounter, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending; // the scan applies primitives
        }
        loop {
            let before = ctx.steps_taken();
            if let Poll::Ready(view) = self.scan.step(&counter.snap, ctx) {
                return Poll::Ready(view.iter().map(|&v| u128::from(v)).sum());
            }
            if ctx.steps_taken() != before {
                return Poll::Pending;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn scan_of_fresh_object_is_zero() {
        let rt = Runtime::free_running(3);
        let ctx = rt.ctx(0);
        let snap = AtomicSnapshot::new(3);
        assert_eq!(snap.scan(&ctx), vec![0, 0, 0]);
    }

    #[test]
    fn update_then_scan_sequential() {
        let rt = Runtime::free_running(2);
        let c0 = rt.ctx(0);
        let c1 = rt.ctx(1);
        let snap = AtomicSnapshot::new(2);
        snap.update(&c0, 5);
        snap.update(&c1, 7);
        snap.update(&c0, 6);
        assert_eq!(snap.scan(&c1), vec![6, 7]);
    }

    #[test]
    fn quiescent_scan_costs_two_collects() {
        let n = 8;
        let rt = Runtime::free_running(n);
        let ctx = rt.ctx(0);
        let snap = AtomicSnapshot::new(n);
        let s0 = ctx.steps_taken();
        let _ = snap.scan(&ctx);
        assert_eq!(ctx.steps_taken() - s0, 2 * n as u64);
    }

    #[test]
    fn concurrent_scans_are_snapshots() {
        // Writers keep pairs (2i, 2i+1) equal in adjacent components; a
        // scan must never see them differ by more than the in-flight gap.
        let n = 4;
        let rt = Runtime::free_running(n);
        let snap = Arc::new(AtomicSnapshot::new(n));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = vec![];
        for pid in 0..2 {
            let snap = snap.clone();
            let ctx = rt.ctx(pid);
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut v = 0;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    v += 1;
                    snap.update(&ctx, v);
                }
            }));
        }
        let ctx = rt.ctx(3);
        for _ in 0..200 {
            let view = snap.scan(&ctx);
            assert_eq!(view.len(), n);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn counter_sequential_conformance() {
        let c = SnapshotCounter::new(2);
        testutil::check_sequential_exact(&c, 50);
    }

    #[test]
    fn counter_concurrent_exact() {
        let c = Arc::new(SnapshotCounter::new(4));
        testutil::check_concurrent_exact(c, 4, 300);
    }
}
