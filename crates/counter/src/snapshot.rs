//! The Afek et al. single-writer atomic snapshot, and a counter on top.
//!
//! [`AtomicSnapshot`] implements the classic wait-free construction
//! (Afek, Attiya, Dolev, Gafni, Merritt, Shavit, *Atomic snapshots of
//! shared memory*, J. ACM 1993): each segment stores `(value, seq,
//! embedded view)`. A `scan` repeatedly double-collects; if the two
//! collects agree on all sequence numbers it returns the collected values,
//! and if some process is observed to move **twice**, its embedded view —
//! a scan that completed entirely within our own scan's window — is
//! returned instead. At most `n+1` collects, so `O(n²)` steps worst case.
//!
//! [`SnapshotCounter`] is the textbook exact counter on top: `increment`
//! bumps the invoker's segment; `read` scans and sums. It is the "wait-free
//! exact counter from atomic snapshot" of the paper's introduction.

use crate::spec::Counter;
use smr::{ProcCtx, WideRegister};

/// One snapshot segment: the process's value, its update count and the
/// view it embedded at its last update.
#[derive(Debug, Clone, Default)]
struct Segment {
    value: u64,
    seq: u64,
    view: Vec<u64>,
}

/// A wait-free single-writer atomic snapshot over `n` `u64` components.
pub struct AtomicSnapshot {
    segments: Vec<WideRegister<Segment>>,
}

impl AtomicSnapshot {
    /// A snapshot object with `n` components, all initially 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        AtomicSnapshot {
            segments: (0..n).map(|_| WideRegister::default()).collect(),
        }
    }

    /// Number of components.
    pub fn n(&self) -> usize {
        self.segments.len()
    }

    fn collect(&self, ctx: &ProcCtx) -> Vec<Segment> {
        self.segments.iter().map(|s| s.read(ctx)).collect()
    }

    /// Wait-free atomic scan: a vector of all components that was
    /// simultaneously present at some instant within this call.
    pub fn scan(&self, ctx: &ProcCtx) -> Vec<u64> {
        let n = self.segments.len();
        let mut moved = vec![0u32; n];
        let mut a = self.collect(ctx);
        loop {
            let b = self.collect(ctx);
            if a.iter().zip(&b).all(|(x, y)| x.seq == y.seq) {
                return b.into_iter().map(|s| s.value).collect();
            }
            for j in 0..n {
                if a[j].seq != b[j].seq {
                    moved[j] += 1;
                    if moved[j] >= 2 {
                        // j completed an update that started after our
                        // scan began; its embedded view is linearizable
                        // within our window.
                        return b[j].view.clone();
                    }
                }
            }
            a = b;
        }
    }

    /// Wait-free update of the invoking process's component.
    pub fn update(&self, ctx: &ProcCtx, value: u64) {
        let view = self.scan(ctx);
        let own = &self.segments[ctx.pid()];
        let old = own.read(ctx);
        own.write(
            ctx,
            Segment {
                value,
                seq: old.seq + 1,
                view,
            },
        );
    }

    /// Current value of the invoking process's own component (one step).
    pub fn my_value(&self, ctx: &ProcCtx) -> u64 {
        self.segments[ctx.pid()].read(ctx).value
    }
}

/// The classic exact counter from an atomic snapshot: `O(n)`-ish
/// increments (one scan) and `O(n²)` worst-case reads.
pub struct SnapshotCounter {
    snap: AtomicSnapshot,
}

impl SnapshotCounter {
    /// A counter for `n` processes.
    pub fn new(n: usize) -> Self {
        SnapshotCounter {
            snap: AtomicSnapshot::new(n),
        }
    }
}

impl Counter for SnapshotCounter {
    fn increment(&self, ctx: &ProcCtx) {
        let mine = self.snap.my_value(ctx);
        self.snap.update(ctx, mine + 1);
    }

    fn read(&self, ctx: &ProcCtx) -> u128 {
        self.snap.scan(ctx).iter().map(|&v| u128::from(v)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn scan_of_fresh_object_is_zero() {
        let rt = Runtime::free_running(3);
        let ctx = rt.ctx(0);
        let snap = AtomicSnapshot::new(3);
        assert_eq!(snap.scan(&ctx), vec![0, 0, 0]);
    }

    #[test]
    fn update_then_scan_sequential() {
        let rt = Runtime::free_running(2);
        let c0 = rt.ctx(0);
        let c1 = rt.ctx(1);
        let snap = AtomicSnapshot::new(2);
        snap.update(&c0, 5);
        snap.update(&c1, 7);
        snap.update(&c0, 6);
        assert_eq!(snap.scan(&c1), vec![6, 7]);
    }

    #[test]
    fn quiescent_scan_costs_two_collects() {
        let n = 8;
        let rt = Runtime::free_running(n);
        let ctx = rt.ctx(0);
        let snap = AtomicSnapshot::new(n);
        let s0 = ctx.steps_taken();
        let _ = snap.scan(&ctx);
        assert_eq!(ctx.steps_taken() - s0, 2 * n as u64);
    }

    #[test]
    fn concurrent_scans_are_snapshots() {
        // Writers keep pairs (2i, 2i+1) equal in adjacent components; a
        // scan must never see them differ by more than the in-flight gap.
        let n = 4;
        let rt = Runtime::free_running(n);
        let snap = Arc::new(AtomicSnapshot::new(n));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = vec![];
        for pid in 0..2 {
            let snap = snap.clone();
            let ctx = rt.ctx(pid);
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut v = 0;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    v += 1;
                    snap.update(&ctx, v);
                }
            }));
        }
        let ctx = rt.ctx(3);
        for _ in 0..200 {
            let view = snap.scan(&ctx);
            assert_eq!(view.len(), n);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn counter_sequential_conformance() {
        let c = SnapshotCounter::new(2);
        testutil::check_sequential_exact(&c, 50);
    }

    #[test]
    fn counter_concurrent_exact() {
        let c = Arc::new(SnapshotCounter::new(4));
        testutil::check_concurrent_exact(c, 4, 300);
    }
}
