//! [`OpTask`] forms of the baseline counters' operations, for the coop
//! execution backend (they run unchanged on the thread backend).
//!
//! [`CollectCounter`]'s operations are rewritten as one-primitive-per-
//! poll state machines; the lock-based [`LockCounter`] oracle applies no
//! primitives at all, so its task forms are
//! [`ImmediateOp`](smr::ImmediateOp) adapters completing on the priming
//! poll.

use crate::collect::CollectCounter;
use crate::reference::LockCounter;
use crate::spec::Counter;
use smr::{ImmediateOp, OpTask, Poll, ProcCtx};
use std::sync::Arc;

/// `CollectCounter::increment` as a resumable task: read the invoking
/// process's cell, then write it back incremented — two primitives.
pub struct CollectIncTask {
    counter: Arc<CollectCounter>,
    /// `None` until primed; then the value read from the own cell.
    read: Option<u64>,
    primed: bool,
}

impl CollectIncTask {
    /// An increment against `counter`.
    pub fn new(counter: Arc<CollectCounter>) -> Self {
        CollectIncTask {
            counter,
            read: None,
            primed: false,
        }
    }
}

impl OpTask for CollectIncTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        let cell = self.counter.cell(ctx.pid());
        match self.read {
            None => {
                self.read = Some(cell.read(ctx));
                Poll::Pending
            }
            Some(v) => {
                cell.write(ctx, v + 1);
                Poll::Ready(0)
            }
        }
    }
}

/// `CollectCounter::read` as a resumable task: collect the `n` cells,
/// one primitive per poll, resolving to their sum.
pub struct CollectReadTask {
    counter: Arc<CollectCounter>,
    next: usize,
    sum: u128,
    primed: bool,
}

impl CollectReadTask {
    /// A read against `counter`.
    pub fn new(counter: Arc<CollectCounter>) -> Self {
        CollectReadTask {
            counter,
            next: 0,
            sum: 0,
            primed: false,
        }
    }
}

impl OpTask for CollectReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        self.sum += u128::from(self.counter.cell(self.next).read(ctx));
        self.next += 1;
        if self.next == self.counter.n() {
            Poll::Ready(self.sum)
        } else {
            Poll::Pending
        }
    }
}

/// `LockCounter::increment` as a task (zero primitives: completes on the
/// priming poll, like the closure form completes without grants).
pub fn lock_inc_task(oracle: Arc<LockCounter>) -> impl OpTask {
    ImmediateOp::new(move |ctx| {
        oracle.increment(ctx);
        0
    })
}

/// `LockCounter::read` as a task (zero primitives).
pub fn lock_read_task(oracle: Arc<LockCounter>) -> impl OpTask {
    ImmediateOp::new(move |ctx| oracle.read(ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::Runtime;

    fn run<T: OpTask>(mut t: T, ctx: &ProcCtx) -> u128 {
        loop {
            if let Poll::Ready(v) = t.poll(ctx) {
                return v;
            }
        }
    }

    #[test]
    fn collect_tasks_match_blocking_costs_and_values() {
        let n = 5;
        let rt = Runtime::free_running(n);
        let c = Arc::new(CollectCounter::new(n));
        for pid in 0..n {
            let ctx = rt.ctx(pid);
            let s0 = ctx.steps_taken();
            let _ = run(CollectIncTask::new(c.clone()), &ctx);
            assert_eq!(ctx.steps_taken() - s0, 2, "increment: 2 primitives");
        }
        let ctx = rt.ctx(0);
        let s0 = ctx.steps_taken();
        let sum = run(CollectReadTask::new(c.clone()), &ctx);
        assert_eq!(ctx.steps_taken() - s0, n as u64, "read: n primitives");
        assert_eq!(sum, n as u128);
        assert_eq!(c.read(&ctx), n as u128, "blocking read agrees");
    }

    #[test]
    fn oracle_tasks_apply_no_primitives() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let oracle = Arc::new(LockCounter::new());
        let _ = run(lock_inc_task(oracle.clone()), &ctx);
        assert_eq!(run(lock_read_task(oracle), &ctx), 1);
        assert_eq!(ctx.steps_taken(), 0);
    }
}
