//! [`OpTask`] forms of the baseline counters' operations, for the coop
//! execution backend (they run unchanged on the thread backend).
//!
//! [`CollectCounter`]'s operations are rewritten as one-primitive-per-
//! poll state machines; [`SnapshotCounter`], [`AachCounter`] and
//! [`UnboundedTreeCounter`] expose their operations as resumable
//! machines next to the objects themselves (the single transcription
//! their blocking methods drive — see `maxreg::tree`'s module docs for
//! the convention), wrapped here into owning [`OpTask`]s; the
//! lock-based [`LockCounter`] oracle applies no primitives at all, so
//! its task forms are [`ImmediateOp`](smr::ImmediateOp) adapters
//! completing on the priming poll.

use crate::aach::{AachCounter, AachIncMachine, AachReadMachine};
use crate::collect::CollectCounter;
use crate::reference::LockCounter;
use crate::snapshot::{SnapshotCounter, SnapshotIncMachine, SnapshotReadMachine};
use crate::spec::Counter;
use crate::unbounded_tree::{
    UnboundedTreeCounter, UnboundedTreeIncMachine, UnboundedTreeReadMachine,
};
use smr::{ImmediateOp, OpTask, Poll, ProcCtx};
use std::sync::Arc;

/// `CollectCounter::increment` as a resumable task: read the invoking
/// process's cell, then write it back incremented — two primitives.
pub struct CollectIncTask {
    counter: Arc<CollectCounter>,
    /// `None` until primed; then the value read from the own cell.
    read: Option<u64>,
    primed: bool,
}

impl CollectIncTask {
    /// An increment against `counter`.
    pub fn new(counter: Arc<CollectCounter>) -> Self {
        CollectIncTask {
            counter,
            read: None,
            primed: false,
        }
    }
}

impl OpTask for CollectIncTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        let cell = self.counter.cell(ctx.pid());
        match self.read {
            None => {
                self.read = Some(cell.read(ctx));
                Poll::Pending
            }
            Some(v) => {
                cell.write(ctx, v + 1);
                Poll::Ready(0)
            }
        }
    }
}

/// `CollectCounter::read` as a resumable task: collect the `n` cells,
/// one primitive per poll, resolving to their sum.
pub struct CollectReadTask {
    counter: Arc<CollectCounter>,
    next: usize,
    sum: u128,
    primed: bool,
}

impl CollectReadTask {
    /// A read against `counter`.
    pub fn new(counter: Arc<CollectCounter>) -> Self {
        CollectReadTask {
            counter,
            next: 0,
            sum: 0,
            primed: false,
        }
    }
}

impl OpTask for CollectReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        self.sum += u128::from(self.counter.cell(self.next).read(ctx));
        self.next += 1;
        if self.next == self.counter.n() {
            Poll::Ready(self.sum)
        } else {
            Poll::Pending
        }
    }
}

/// `SnapshotCounter::increment` as a resumable task: read the own
/// component, then the embedded Afek-et-al. update (scan + own read +
/// own write).
pub struct SnapshotIncTask {
    counter: Arc<SnapshotCounter>,
    machine: SnapshotIncMachine,
}

impl SnapshotIncTask {
    /// An increment against `counter`.
    pub fn new(counter: Arc<SnapshotCounter>) -> Self {
        let machine = SnapshotIncMachine::new(&counter);
        SnapshotIncTask { counter, machine }
    }
}

impl OpTask for SnapshotIncTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.counter, ctx).map(|()| 0)
    }
}

/// `SnapshotCounter::read` as a resumable task: a full atomic scan, one
/// segment read per poll, resolving to the summed view.
pub struct SnapshotReadTask {
    counter: Arc<SnapshotCounter>,
    machine: SnapshotReadMachine,
}

impl SnapshotReadTask {
    /// A read against `counter`.
    pub fn new(counter: Arc<SnapshotCounter>) -> Self {
        let machine = SnapshotReadMachine::new(&counter);
        SnapshotReadTask { counter, machine }
    }
}

impl OpTask for SnapshotReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.counter, ctx)
    }
}

/// `AachCounter::increment` as a resumable task (the monotone-circuit
/// ascent, one primitive per poll).
pub struct AachIncTask {
    counter: Arc<AachCounter>,
    machine: AachIncMachine,
}

impl AachIncTask {
    /// An increment against `counter` on behalf of process `pid` (the
    /// pid the task will be submitted to).
    pub fn new(counter: Arc<AachCounter>, pid: usize) -> Self {
        let machine = AachIncMachine::new(&counter, pid);
        AachIncTask { counter, machine }
    }
}

impl OpTask for AachIncTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.counter, ctx).map(|()| 0)
    }
}

/// `AachCounter::read` as a resumable task (the root max register).
pub struct AachReadTask {
    counter: Arc<AachCounter>,
    machine: AachReadMachine,
}

impl AachReadTask {
    /// A read against `counter`.
    pub fn new(counter: Arc<AachCounter>) -> Self {
        let machine = AachReadMachine::new(&counter);
        AachReadTask { counter, machine }
    }
}

impl OpTask for AachReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.counter, ctx)
    }
}

/// `UnboundedTreeCounter::increment` as a resumable task.
pub struct UnboundedTreeIncTask {
    counter: Arc<UnboundedTreeCounter>,
    machine: UnboundedTreeIncMachine,
}

impl UnboundedTreeIncTask {
    /// An increment against `counter` on behalf of process `pid` (the
    /// pid the task will be submitted to).
    pub fn new(counter: Arc<UnboundedTreeCounter>, pid: usize) -> Self {
        let machine = UnboundedTreeIncMachine::new(&counter, pid);
        UnboundedTreeIncTask { counter, machine }
    }
}

impl OpTask for UnboundedTreeIncTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.counter, ctx).map(|()| 0)
    }
}

/// `UnboundedTreeCounter::read` as a resumable task.
pub struct UnboundedTreeReadTask {
    counter: Arc<UnboundedTreeCounter>,
    machine: UnboundedTreeReadMachine,
}

impl UnboundedTreeReadTask {
    /// A read against `counter`.
    pub fn new(counter: Arc<UnboundedTreeCounter>) -> Self {
        let machine = UnboundedTreeReadMachine::new(&counter);
        UnboundedTreeReadTask { counter, machine }
    }
}

impl OpTask for UnboundedTreeReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.counter, ctx)
    }
}

/// `LockCounter::increment` as a task (zero primitives: completes on the
/// priming poll, like the closure form completes without grants).
pub fn lock_inc_task(oracle: Arc<LockCounter>) -> impl OpTask {
    ImmediateOp::new(move |ctx| {
        oracle.increment(ctx);
        0
    })
}

/// `LockCounter::read` as a task (zero primitives).
pub fn lock_read_task(oracle: Arc<LockCounter>) -> impl OpTask {
    ImmediateOp::new(move |ctx| oracle.read(ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::Runtime;

    fn run<T: OpTask>(mut t: T, ctx: &ProcCtx) -> u128 {
        loop {
            if let Poll::Ready(v) = t.poll(ctx) {
                return v;
            }
        }
    }

    #[test]
    fn collect_tasks_match_blocking_costs_and_values() {
        let n = 5;
        let rt = Runtime::free_running(n);
        let c = Arc::new(CollectCounter::new(n));
        for pid in 0..n {
            let ctx = rt.ctx(pid);
            let s0 = ctx.steps_taken();
            let _ = run(CollectIncTask::new(c.clone()), &ctx);
            assert_eq!(ctx.steps_taken() - s0, 2, "increment: 2 primitives");
        }
        let ctx = rt.ctx(0);
        let s0 = ctx.steps_taken();
        let sum = run(CollectReadTask::new(c.clone()), &ctx);
        assert_eq!(ctx.steps_taken() - s0, n as u64, "read: n primitives");
        assert_eq!(sum, n as u128);
        assert_eq!(c.read(&ctx), n as u128, "blocking read agrees");
    }

    #[test]
    fn oracle_tasks_apply_no_primitives() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let oracle = Arc::new(LockCounter::new());
        let _ = run(lock_inc_task(oracle.clone()), &ctx);
        assert_eq!(run(lock_read_task(oracle), &ctx), 1);
        assert_eq!(ctx.steps_taken(), 0);
    }

    fn run_boxed(mut t: Box<dyn OpTask>, ctx: &ProcCtx) -> u128 {
        loop {
            if let Poll::Ready(v) = t.poll(ctx) {
                return v;
            }
        }
    }

    /// Drive the same sequential inc/read mix through the blocking form
    /// (counter `a`) and the task form (counter `b`), asserting values
    /// and per-process primitive counts stay identical throughout.
    fn pin_task_form_to_blocking_form<C: Counter>(
        n: usize,
        rounds: u64,
        a: C,
        b: Arc<C>,
        inc_task: &dyn Fn(Arc<C>, usize) -> Box<dyn OpTask>,
        read_task: &dyn Fn(Arc<C>) -> Box<dyn OpTask>,
    ) {
        let rt_a = Runtime::free_running(n);
        let rt_b = Runtime::free_running(n);
        for round in 0..rounds {
            let pid = (round % n as u64) as usize;
            let (ctx_a, ctx_b) = (rt_a.ctx(pid), rt_b.ctx(pid));
            a.increment(&ctx_a);
            let _ = run_boxed(inc_task(b.clone(), pid), &ctx_b);
            if round % 3 == 0 {
                let va = a.read(&ctx_a);
                let vb = run_boxed(read_task(b.clone()), &ctx_b);
                assert_eq!(va, vb, "round {round}: values diverged");
            }
            assert_eq!(
                rt_a.steps_of(pid),
                rt_b.steps_of(pid),
                "round {round}: primitive counts diverged"
            );
        }
    }

    #[test]
    fn snapshot_tasks_match_blocking_forms() {
        for n in [1usize, 2, 5] {
            pin_task_form_to_blocking_form(
                n,
                30,
                SnapshotCounter::new(n),
                Arc::new(SnapshotCounter::new(n)),
                &|c, _pid| Box::new(SnapshotIncTask::new(c)),
                &|c| Box::new(SnapshotReadTask::new(c)),
            );
        }
    }

    #[test]
    fn aach_tasks_match_blocking_forms() {
        for n in [1usize, 2, 3, 8] {
            pin_task_form_to_blocking_form(
                n,
                40,
                AachCounter::new(n, 1 << 16),
                Arc::new(AachCounter::new(n, 1 << 16)),
                &|c, pid| Box::new(AachIncTask::new(c, pid)),
                &|c| Box::new(AachReadTask::new(c)),
            );
        }
    }

    #[test]
    fn unbounded_tree_tasks_match_blocking_forms() {
        for n in [1usize, 2, 3, 6] {
            pin_task_form_to_blocking_form(
                n,
                40,
                UnboundedTreeCounter::new(n),
                Arc::new(UnboundedTreeCounter::new(n)),
                &|c, pid| Box::new(UnboundedTreeIncTask::new(c, pid)),
                &|c| Box::new(UnboundedTreeReadTask::new(c)),
            );
        }
    }
}
