//! A lock-based reference counter — the test oracle.
//!
//! **Not** an algorithm of the shared-memory model (mutex, not wait-free,
//! charges no steps); used only to cross-check real implementations.

use crate::spec::Counter;
use parking_lot::Mutex;
use smr::ProcCtx;

/// A trivially correct (blocking) counter for testing.
#[derive(Debug, Default)]
pub struct LockCounter {
    count: Mutex<u128>,
}

impl LockCounter {
    /// A fresh oracle.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Counter for LockCounter {
    fn increment(&self, _ctx: &ProcCtx) {
        *self.count.lock() += 1;
    }

    fn read(&self, _ctx: &ProcCtx) -> u128 {
        *self.count.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;

    #[test]
    fn sequential_conformance() {
        let c = LockCounter::new();
        testutil::check_sequential_exact(&c, 64);
    }

    #[test]
    fn charges_no_steps() {
        let rt = smr::Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = LockCounter::new();
        c.increment(&ctx);
        let _ = c.read(&ctx);
        assert_eq!(ctx.steps_taken(), 0);
    }
}
