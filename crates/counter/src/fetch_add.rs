//! The `fetch&add` hardware baseline.
//!
//! One step per operation — but `fetch&add` is **not** in the paper's
//! primitive set (it is neither historyless nor conditional of arity 1 in
//! the relevant sense), so this counter lives outside the model whose
//! bounds the paper proves. It serves as the "what the hardware gives you"
//! reference line in the throughput benchmarks.

use crate::spec::Counter;
use smr::{FaaRegister, ProcCtx};

/// An exact counter backed by a single `fetch&add` register.
#[derive(Debug, Default)]
pub struct FaaCounter {
    reg: FaaRegister,
}

impl FaaCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Counter for FaaCounter {
    fn increment(&self, ctx: &ProcCtx) {
        self.reg.fetch_add(ctx, 1);
    }

    fn read(&self, ctx: &ProcCtx) -> u128 {
        u128::from(self.reg.read(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn sequential_conformance() {
        let c = FaaCounter::new();
        testutil::check_sequential_exact(&c, 100);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Arc::new(FaaCounter::new());
        testutil::check_concurrent_exact(c, 8, 2_000);
    }

    #[test]
    fn one_step_per_operation() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = FaaCounter::new();
        c.increment(&ctx);
        let _ = c.read(&ctx);
        assert_eq!(ctx.steps_taken(), 2);
    }
}
