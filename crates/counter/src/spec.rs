//! The [`Counter`] object interface.

use smr::ProcCtx;

/// A linearizable counter: `read` returns the number of increments that
/// precede it (exactly, for the implementations in this crate; within a
/// factor of `k`, for the relaxed counter in `approx-objects`).
pub trait Counter: Send + Sync {
    /// Apply one increment.
    fn increment(&self, ctx: &ProcCtx);

    /// Read the (possibly approximate) number of preceding increments.
    fn read(&self, ctx: &ProcCtx) -> u128;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use smr::Runtime;
    use std::sync::Arc;

    /// Sequential conformance for exact counters.
    pub(crate) fn check_sequential_exact<C: Counter>(c: &C, upto: u128) {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        assert_eq!(c.read(&ctx), 0, "fresh counter reads 0");
        for i in 1..=upto {
            c.increment(&ctx);
            assert_eq!(c.read(&ctx), i, "after {i} increments");
        }
    }

    /// Concurrent smoke test for exact counters: n threads, `per`
    /// increments each; quiescent read must be exact.
    pub(crate) fn check_concurrent_exact<C: Counter + 'static>(c: Arc<C>, n: usize, per: u64) {
        let rt = Runtime::free_running(n);
        let mut handles = vec![];
        for pid in 0..n {
            let c = c.clone();
            let ctx = rt.ctx(pid);
            handles.push(std::thread::spawn(move || {
                for _ in 0..per {
                    c.increment(&ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ctx = rt.ctx(0);
        assert_eq!(c.read(&ctx), (n as u128) * u128::from(per));
    }
}
