//! Property-based tests: exact counters agree with the oracle on
//! arbitrary sequential sequences and preserve sums under concurrency.

use counter::{AachCounter, CollectCounter, Counter, FaaCounter, LockCounter, SnapshotCounter};
use proptest::prelude::*;
use smr::Runtime;
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
enum Op {
    Inc,
    Read,
}

fn ops_strategy(len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(prop_oneof![Just(Op::Inc), Just(Op::Read)], 1..len)
}

fn check_against_oracle<C: Counter>(c: &C, ops: &[Op]) {
    let rt = Runtime::free_running(1);
    let ctx = rt.ctx(0);
    let oracle = LockCounter::new();
    for op in ops {
        match op {
            Op::Inc => {
                c.increment(&ctx);
                oracle.increment(&ctx);
            }
            Op::Read => assert_eq!(c.read(&ctx), oracle.read(&ctx)),
        }
    }
    assert_eq!(c.read(&ctx), oracle.read(&ctx));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn collect_matches_oracle(ops in ops_strategy(60)) {
        check_against_oracle(&CollectCounter::new(1), &ops);
    }

    #[test]
    fn snapshot_matches_oracle(ops in ops_strategy(60)) {
        check_against_oracle(&SnapshotCounter::new(1), &ops);
    }

    #[test]
    fn aach_matches_oracle(n in 1usize..9, ops in ops_strategy(60)) {
        check_against_oracle(&AachCounter::new(n, 1 << 16), &ops);
    }

    #[test]
    fn faa_matches_oracle(ops in ops_strategy(60)) {
        check_against_oracle(&FaaCounter::new(), &ops);
    }

    #[test]
    fn concurrent_sums_are_preserved(
        n in 2usize..6,
        per in 1u64..300,
    ) {
        let rt = Runtime::free_running(n);
        let c = Arc::new(CollectCounter::new(n));
        let handles: Vec<_> = (0..n)
            .map(|pid| {
                let c = Arc::clone(&c);
                let ctx = rt.ctx(pid);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        c.increment(&ctx);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let ctx = rt.ctx(0);
        prop_assert_eq!(c.read(&ctx), u128::from(per) * n as u128);
    }

    #[test]
    fn aach_read_cost_independent_of_count(
        n in 2usize..17,
        incs in 1u64..200,
    ) {
        // Reads are O(log m) regardless of how many increments happened.
        let m = 1u64 << 16;
        let rt = Runtime::free_running(n);
        let c = AachCounter::new(n, m);
        let ctx = rt.ctx(0);
        for _ in 0..incs {
            c.increment(&ctx);
        }
        let s0 = ctx.steps_taken();
        let _ = c.read(&ctx);
        prop_assert!(ctx.steps_taken() - s0 <= 17, "read must stay O(log m)");
    }

    #[test]
    fn snapshot_scan_is_a_consistent_cut(
        updates in prop::collection::vec((0usize..3, 1u64..100), 1..30),
    ) {
        // Sequential updates through 3 components: a scan equals the last
        // written value per component.
        let rt = Runtime::free_running(3);
        let snap = counter::AtomicSnapshot::new(3);
        let mut expect = [0u64; 3];
        for (pid, v) in updates {
            let ctx = rt.ctx(pid);
            snap.update(&ctx, v);
            expect[pid] = v;
        }
        let ctx = rt.ctx(0);
        prop_assert_eq!(snap.scan(&ctx), expect.to_vec());
    }
}
