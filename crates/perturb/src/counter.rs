//! Perturbing executions for (bounded) counters — Lemma V.3 made
//! executable.
//!
//! Round `r` performs `I_r = (k²−1)·Σ_{j<r} I_j + r` increments through a
//! fresh writer process; by Lemma V.3 this forces the reader's response
//! past `k·Σ_{j<r} I_j`, i.e. every round perturbs the reader. As in
//! [`maxreg`](crate::maxreg), the reader's solo run is traced and its
//! distinct-base-object count recorded — the quantity Theorem V.4 bounds
//! by `Ω(min(log₂ log_k m, n))`.
//!
//! Note the asymmetry with max registers: the paper gives **no**
//! worst-case-optimal bounded k-multiplicative counter (it is an open
//! question, §VI). Perturbing Algorithm 1 therefore shows measured reader
//! probe counts *above* the lower-bound curve, while the k-multiplicative
//! max register sits *on* its matching bound.

use approx_objects::{KmultCounter, KmultCounterHandle};
use counter::Counter;
use parking_lot::Mutex;
use smr::{ProcCtx, Runtime};
use std::collections::HashSet;
use std::sync::Arc;

/// Anything that looks like a counter to the perturber: per-process
/// increment and read entry points.
pub trait CounterTarget: Send + Sync {
    /// One increment on behalf of process `pid`.
    fn increment(&self, pid: usize, ctx: &ProcCtx);
    /// A read on behalf of process `pid`.
    fn read(&self, pid: usize, ctx: &ProcCtx) -> u128;
}

/// Adapter for the handle-free exact counters of the `counter` crate.
pub struct SharedCounter<C: Counter>(pub Arc<C>);

impl<C: Counter> CounterTarget for SharedCounter<C> {
    fn increment(&self, _pid: usize, ctx: &ProcCtx) {
        self.0.increment(ctx);
    }
    fn read(&self, _pid: usize, ctx: &ProcCtx) -> u128 {
        self.0.read(ctx)
    }
}

/// Adapter for Algorithm 1, whose persistent locals live in per-process
/// handles. The mutexes are uncontended (each pid only ever locks its
/// own handle) and exist purely to satisfy shared ownership; they charge
/// no modelled steps.
pub struct KmultTarget {
    handles: Vec<Mutex<KmultCounterHandle>>,
}

impl KmultTarget {
    /// Wrap a k-multiplicative counter, creating one handle per process.
    pub fn new(counter: &Arc<KmultCounter>) -> Self {
        KmultTarget {
            handles: (0..counter.n())
                .map(|p| Mutex::new(counter.handle(p)))
                .collect(),
        }
    }
}

impl CounterTarget for KmultTarget {
    fn increment(&self, pid: usize, ctx: &ProcCtx) {
        self.handles[pid].lock().increment(ctx);
    }
    fn read(&self, pid: usize, ctx: &ProcCtx) -> u128 {
        self.handles[pid].lock().read(ctx)
    }
}

/// Configuration of a counter perturbation run.
#[derive(Debug, Clone, Copy)]
pub struct CounterPerturbConfig {
    /// Available writer processes (the paper's `n − 1`).
    pub writers: usize,
    /// Accuracy parameter `k` of the target (1 for exact counters);
    /// drives the increment batches `I_r = (k²−1)·ΣI_j + r`.
    pub k: u64,
    /// Stop once total increments would exceed this bound `m`.
    pub m: u128,
    /// Hard cap on rounds.
    pub max_rounds: u64,
}

/// One round's measurements.
#[derive(Debug, Clone, Copy)]
pub struct CounterPerturbRound {
    /// Round number, starting at 1.
    pub round: u64,
    /// Increments performed this round (`I_r`).
    pub increments: u128,
    /// Cumulative increments after this round.
    pub total_increments: u128,
    /// The reader's solo response after the round.
    pub reader_value: u128,
    /// Distinct base objects the reader's solo run accessed.
    pub distinct_objects: usize,
    /// Steps the reader's solo run took.
    pub reader_steps: u64,
}

/// The full report of a counter perturbation run.
#[derive(Debug, Clone)]
pub struct CounterPerturbReport {
    /// Per-round measurements.
    pub rounds: Vec<CounterPerturbRound>,
    /// Stopped by writer exhaustion (the `n` arm).
    pub saturated: bool,
    /// Stopped by the bound `m` (the `log` arm).
    pub value_exhausted: bool,
    /// `true` iff every round moved the reader's response strictly up.
    pub every_round_perturbed: bool,
}

impl CounterPerturbReport {
    /// Largest distinct-object count over all reader runs.
    pub fn max_distinct_objects(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.distinct_objects)
            .max()
            .unwrap_or(0)
    }

    /// Number of rounds achieved.
    pub fn rounds_achieved(&self) -> u64 {
        self.rounds.len() as u64
    }
}

/// Run the counter perturbation construction against `target`.
pub fn perturb_counter<T: CounterTarget>(
    target: &T,
    cfg: CounterPerturbConfig,
) -> CounterPerturbReport {
    assert!(cfg.writers >= 1);
    assert!(cfg.k >= 1);
    let rt = Runtime::free_running(cfg.writers + 1);
    let reader_pid = cfg.writers;
    let reader_ctx = rt.ctx(reader_pid);

    let mut rounds = Vec::new();
    let mut prev_value = target.read(reader_pid, &reader_ctx);
    let mut total: u128 = 0;
    let mut every_round_perturbed = true;
    let mut saturated = false;
    let mut value_exhausted = false;
    let ksq_minus_1 = u128::from(cfg.k) * u128::from(cfg.k) - 1;

    for round in 1..=cfg.max_rounds {
        let batch = ksq_minus_1 * total + u128::from(round);
        if total + batch > cfg.m {
            value_exhausted = true;
            break;
        }
        if round as usize > cfg.writers {
            saturated = true;
            break;
        }
        let writer_pid = round as usize - 1;
        let writer_ctx = rt.ctx(writer_pid);
        for _ in 0..batch {
            target.increment(writer_pid, &writer_ctx);
        }
        total += batch;

        let _ = rt.take_trace();
        rt.enable_tracing();
        let steps_before = reader_ctx.steps_taken();
        let value = target.read(reader_pid, &reader_ctx);
        let reader_steps = reader_ctx.steps_taken() - steps_before;
        rt.disable_tracing();
        let trace = rt.take_trace();
        let distinct_objects: usize = trace
            .iter()
            .filter_map(|e| e.access())
            .filter(|a| a.pid == reader_pid)
            .map(|a| a.obj)
            .collect::<HashSet<_>>()
            .len();

        if value <= prev_value {
            every_round_perturbed = false;
        }
        prev_value = value;
        rounds.push(CounterPerturbRound {
            round,
            increments: batch,
            total_increments: total,
            reader_value: value,
            distinct_objects,
            reader_steps,
        });
    }

    CounterPerturbReport {
        rounds,
        saturated,
        value_exhausted,
        every_round_perturbed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counter::AachCounter;

    #[test]
    fn exact_aach_counter_is_perturbed() {
        let c = Arc::new(AachCounter::new(9, 1 << 22));
        let target = SharedCounter(c);
        let report = perturb_counter(
            &target,
            CounterPerturbConfig {
                writers: 8,
                k: 2,
                m: 1 << 20,
                max_rounds: 50,
            },
        );
        assert!(report.every_round_perturbed);
        assert!(
            report.rounds_achieved() >= 5,
            "got {}",
            report.rounds_achieved()
        );
        // Exact reads return the exact total.
        for r in &report.rounds {
            assert_eq!(r.reader_value, r.total_increments);
        }
    }

    #[test]
    fn kmult_counter_is_perturbed_and_stays_accurate() {
        let k = 4;
        let c = KmultCounter::new(9, k);
        let target = KmultTarget::new(&c);
        let report = perturb_counter(
            &target,
            CounterPerturbConfig {
                writers: 8,
                k,
                m: 1 << 24,
                max_rounds: 50,
            },
        );
        assert!(report.every_round_perturbed);
        for r in &report.rounds {
            let v = r.total_increments;
            let x = r.reader_value;
            assert!(
                v <= x * u128::from(k) && x <= v * u128::from(k),
                "round {}: total {v}, read {x}",
                r.round
            );
        }
    }

    #[test]
    fn batches_follow_lemma_v3() {
        // I_1 = 1, I_r = (k²−1)·ΣI_j + r.
        let c = Arc::new(AachCounter::new(5, 1 << 30));
        let target = SharedCounter(c);
        let report = perturb_counter(
            &target,
            CounterPerturbConfig {
                writers: 4,
                k: 2,
                m: 1 << 28,
                max_rounds: 4,
            },
        );
        let incs: Vec<u128> = report.rounds.iter().map(|r| r.increments).collect();
        assert_eq!(incs[0], 1);
        assert_eq!(incs[1], 3 + 2);
        assert_eq!(incs[2], 3 * 6 + 3);
    }
}
