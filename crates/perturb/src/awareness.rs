//! Awareness sets (Definitions III.2/III.3) computed from primitive
//! traces.
//!
//! Process `p` is *aware* of process `q` after execution `E` if `p = q`
//! or some event of `p` is (transitively) aware of an event of `q` —
//! i.e. `p` read a base-object value that `q`'s writes influenced,
//! directly or through intermediaries.
//!
//! The operational computation walks the trace in execution order,
//! maintaining for every process its awareness set `AW(p)` and for every
//! base object `o` its *influence set* `V(o)` — the awareness set carried
//! by the last nontrivial primitive applied to `o` (historyless
//! primitives overwrite, so earlier influence on the same object is
//! superseded exactly as visibility is in Definition III.2):
//!
//! * a **reading** primitive by `p` on `o`: `AW(p) ∪= V(o)`;
//! * a **nontrivial** primitive by `p` on `o`: `V(o) = {p} ∪ AW(p)`
//!   (for `test&set`, the read happens first — it both learns and
//!   overwrites).
//!
//! Traces should come from gated executions, where the recorded order is
//! the execution order (see [`smr::Runtime::enable_tracing`]).

use crate::bitset::BitSet;
use smr::TraceEvent;
use std::collections::HashMap;

/// Per-process awareness sets after a traced execution.
#[derive(Debug, Clone)]
pub struct AwarenessReport {
    sets: Vec<BitSet>,
}

impl AwarenessReport {
    /// The awareness set of process `p`.
    pub fn of(&self, p: usize) -> &BitSet {
        &self.sets[p]
    }

    /// Sizes of all awareness sets, in pid order.
    pub fn sizes(&self) -> Vec<usize> {
        self.sets.iter().map(|s| s.len()).collect()
    }

    /// Number of processes whose awareness set has at least `threshold`
    /// members — the quantity Corollary III.10.1 bounds below.
    pub fn processes_aware_of_at_least(&self, threshold: usize) -> usize {
        self.sets.iter().filter(|s| s.len() >= threshold).count()
    }
}

/// Compute awareness sets from a trace over `n` processes.
///
/// Only primitive applications ([`TraceEvent::Access`]) matter here;
/// controller-side edges (grants, invocations, crashes) are skipped.
pub fn compute(n: usize, trace: &[TraceEvent]) -> AwarenessReport {
    let mut aw: Vec<BitSet> = (0..n).map(|p| BitSet::singleton(n, p)).collect();
    let mut influence: HashMap<usize, BitSet> = HashMap::new();

    for ev in trace.iter().filter_map(|e| e.access()) {
        debug_assert!(ev.pid < n, "trace pid out of range");
        if ev.kind.is_reading() {
            if let Some(v) = influence.get(&ev.obj) {
                let v = v.clone();
                aw[ev.pid].union_with(&v);
            }
        }
        if ev.kind.is_nontrivial() {
            let mut v = aw[ev.pid].clone();
            v.insert(ev.pid);
            influence.insert(ev.obj, v);
        }
    }
    AwarenessReport { sets: aw }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::{Access, AccessKind};

    fn ev(seq: u64, pid: usize, obj: usize, kind: AccessKind) -> TraceEvent {
        TraceEvent::Access(Access {
            seq,
            pid,
            obj,
            kind,
            before: 0,
            after: 0,
        })
    }

    #[test]
    fn processes_start_self_aware() {
        let r = compute(3, &[]);
        assert_eq!(r.sizes(), vec![1, 1, 1]);
        assert!(r.of(0).contains(0));
        assert!(!r.of(0).contains(1));
    }

    #[test]
    fn read_after_write_transfers_awareness() {
        let trace = [
            ev(0, 0, 100, AccessKind::Write),
            ev(1, 1, 100, AccessKind::Read),
        ];
        let r = compute(2, &trace);
        assert!(r.of(1).contains(0), "reader became aware of writer");
        assert!(!r.of(0).contains(1), "writer learned nothing");
    }

    #[test]
    fn read_before_write_transfers_nothing() {
        let trace = [
            ev(0, 1, 100, AccessKind::Read),
            ev(1, 0, 100, AccessKind::Write),
        ];
        let r = compute(2, &trace);
        assert!(!r.of(1).contains(0));
    }

    #[test]
    fn awareness_is_transitive() {
        // 0 writes o1; 1 reads o1 then writes o2; 2 reads o2 ⇒ 2 is aware
        // of both 1 and 0 (through 1's write).
        let trace = [
            ev(0, 0, 1, AccessKind::Write),
            ev(1, 1, 1, AccessKind::Read),
            ev(2, 1, 2, AccessKind::Write),
            ev(3, 2, 2, AccessKind::Read),
        ];
        let r = compute(3, &trace);
        assert!(r.of(2).contains(1));
        assert!(r.of(2).contains(0), "transitive awareness");
    }

    #[test]
    fn overwrite_supersedes_influence() {
        // 0 writes o; 1 overwrites o (without reading: write is not a
        // reading primitive); 2 reads o ⇒ aware of 1 only.
        let trace = [
            ev(0, 0, 5, AccessKind::Write),
            ev(1, 1, 5, AccessKind::Write),
            ev(2, 2, 5, AccessKind::Read),
        ];
        let r = compute(3, &trace);
        assert!(r.of(2).contains(1));
        assert!(!r.of(2).contains(0), "0's influence was overwritten unread");
    }

    #[test]
    fn test_and_set_both_learns_and_influences() {
        // 0 TAS o; 1 TAS o ⇒ 1 learned 0's influence; 2 reads o ⇒ aware
        // of both.
        let trace = [
            ev(0, 0, 9, AccessKind::TestAndSet),
            ev(1, 1, 9, AccessKind::TestAndSet),
            ev(2, 2, 9, AccessKind::Read),
        ];
        let r = compute(3, &trace);
        assert!(r.of(1).contains(0));
        assert!(r.of(2).contains(0));
        assert!(r.of(2).contains(1));
    }

    #[test]
    fn threshold_counting() {
        let trace = [
            ev(0, 0, 1, AccessKind::Write),
            ev(1, 1, 1, AccessKind::Read),
            ev(2, 2, 1, AccessKind::Read),
        ];
        let r = compute(4, &trace);
        assert_eq!(r.processes_aware_of_at_least(2), 2, "pids 1 and 2");
        assert_eq!(r.processes_aware_of_at_least(1), 4, "self-awareness");
    }
}
