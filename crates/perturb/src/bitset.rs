//! A small fixed-capacity bitset for process-id sets.

/// A set of process ids in `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set over `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// A singleton set.
    pub fn singleton(capacity: usize, i: usize) -> Self {
        let mut s = Self::new(capacity);
        s.insert(i);
        s
    }

    /// Insert `i`; returns `true` if newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "index {i} out of capacity {}",
            self.capacity
        );
        let w = i / 64;
        let b = 1u64 << (i % 64);
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// In-place union; returns `true` if `self` grew.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity);
        let mut grew = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            grew |= *a != before;
        }
        grew
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.capacity).filter(move |&i| self.contains(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0), "duplicate");
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn union_reports_growth() {
        let mut a = BitSet::singleton(10, 1);
        let b = BitSet::singleton(10, 2);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "idempotent");
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn capacity_is_enforced() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }
}
