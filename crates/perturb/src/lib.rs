//! # perturb — lower-bound machinery
//!
//! Executable versions of the two adversarial constructions the paper's
//! lower bounds rest on:
//!
//! * [`awareness`] — *awareness sets* (Definitions III.2/III.3): an
//!   operational computation over recorded primitive traces, used to
//!   exhibit Lemma III.10 / Corollary III.10.1 (in any one-increment-
//!   one-read execution of a k-multiplicative counter, `n/2` processes
//!   end up aware of at least `n/2k²` processes) — the combinatorial core
//!   of the `Ω(n·log(n/k²))` bound of Theorem III.11.
//! * [`maxreg`] / [`counter`] — *perturbing executions* (\[5\],
//!   Definition 2, as instantiated by Lemmas V.1/V.3): a designated
//!   reader is repeatedly perturbed by fresh writers writing
//!   `v_r = k²·v_{r−1} + 1` (respectively, performing
//!   `I_r = (k²−1)·ΣI_j + r` increments); every round forces the reader's
//!   solo response to change. The builders realize the full
//!   `Θ(log_k m)` perturbation count and measure how many **distinct base
//!   objects** the reader's solo operation accesses as rounds accumulate —
//!   the quantity Theorems V.2/V.4 bound from below by
//!   `Ω(min(log₂ L, n))`.
//!
//! The perturbation builders instantiate the framework with *complete*
//! perturbing operations (the `λ = ∅` case of Definition 2): each round's
//! writer runs to completion before the reader's solo run is measured.
//! That suffices to realize the perturbation count of Lemmas V.1/V.3 and
//! keeps the experiment deterministic; see DESIGN.md §5.

pub mod awareness;
pub mod counter;
pub mod maxreg;

mod bitset;
pub use bitset::BitSet;
