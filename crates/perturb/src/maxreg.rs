//! Perturbing executions for (bounded) max registers — Lemma V.1 made
//! executable.
//!
//! Round `r` writes `v_r = F·v_{r−1} + 1` through a **fresh** writer
//! process (`F = k²` for a k-multiplicative register: the smallest jump
//! that forces the reader's admissible response window to move; `F = 1`
//! degenerates to the exact register's `+1` perturbation). After each
//! round the designated reader performs a solo `Read` under tracing and
//! we record its return value, step count and the number of **distinct
//! base objects** it accessed — the quantity [5, Theorem 1] bounds by
//! `Ω(min(log₂ L, n))` for an `L`-perturbable object.
//!
//! The construction stops when it *saturates* (one event per available
//! writer — the `n` arm of the bound) or when the next value would exceed
//! the bound `m − 1` (the `log L` arm, `L = Θ(log_k m)` by Lemma V.1).

use smr::{ProcCtx, Runtime};
use std::collections::HashSet;

/// Anything that looks like a bounded max register to the perturber.
pub trait MaxRegTarget: Send + Sync {
    /// Write `v` on behalf of the process behind `ctx`.
    fn write(&self, ctx: &ProcCtx, v: u64);
    /// Read (possibly approximately) the maximum written.
    fn read(&self, ctx: &ProcCtx) -> u128;
    /// The bound `m`: writes must stay in `{0,…,m−1}`.
    fn m(&self) -> u64;
}

impl MaxRegTarget for maxreg::TreeMaxRegister {
    fn write(&self, ctx: &ProcCtx, v: u64) {
        maxreg::MaxRegister::write(self, ctx, v);
    }
    fn read(&self, ctx: &ProcCtx) -> u128 {
        u128::from(maxreg::MaxRegister::read(self, ctx))
    }
    fn m(&self) -> u64 {
        maxreg::MaxRegister::bound(self).expect("tree register is bounded")
    }
}

impl MaxRegTarget for maxreg::AdaptiveMaxRegister {
    fn write(&self, ctx: &ProcCtx, v: u64) {
        maxreg::MaxRegister::write(self, ctx, v);
    }
    fn read(&self, ctx: &ProcCtx) -> u128 {
        u128::from(maxreg::MaxRegister::read(self, ctx))
    }
    fn m(&self) -> u64 {
        maxreg::MaxRegister::bound(self).expect("adaptive register is bounded")
    }
}

impl MaxRegTarget for approx_objects::KmultBoundedMaxRegister {
    fn write(&self, ctx: &ProcCtx, v: u64) {
        KmultBoundedMaxRegister::write(self, ctx, v);
    }
    fn read(&self, ctx: &ProcCtx) -> u128 {
        KmultBoundedMaxRegister::read(self, ctx)
    }
    fn m(&self) -> u64 {
        self.m()
    }
}
use approx_objects::KmultBoundedMaxRegister;

/// Configuration of a perturbation run.
#[derive(Debug, Clone, Copy)]
pub struct PerturbConfig {
    /// Available writer processes (the paper's `n − 1`).
    pub writers: usize,
    /// Value jump per round: `v_r = factor·v_{r−1} + 1`.
    pub factor: u64,
    /// Hard cap on rounds (keeps exact-register runs finite).
    pub max_rounds: u64,
}

/// One perturbation round's measurements.
#[derive(Debug, Clone, Copy)]
pub struct PerturbRound {
    /// Round number, starting at 1.
    pub round: u64,
    /// The value the perturbing writer wrote.
    pub written: u64,
    /// What the reader's solo run returned afterwards.
    pub reader_value: u128,
    /// Distinct base objects the reader's solo run accessed.
    pub distinct_objects: usize,
    /// Steps the reader's solo run took.
    pub reader_steps: u64,
}

/// The full report of a perturbation run.
#[derive(Debug, Clone)]
pub struct PerturbReport {
    /// Per-round measurements.
    pub rounds: Vec<PerturbRound>,
    /// `true` if the run stopped because it consumed every writer
    /// (the `n` arm of `Ω(min(log L, n))`).
    pub saturated: bool,
    /// `true` if the run stopped because the next value would exceed
    /// `m − 1` (the `log L` arm).
    pub value_exhausted: bool,
    /// `true` iff every round strictly changed the reader's response —
    /// the witness that each round really was a perturbation.
    pub every_round_perturbed: bool,
}

impl PerturbReport {
    /// Largest number of distinct base objects any reader run accessed.
    pub fn max_distinct_objects(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.distinct_objects)
            .max()
            .unwrap_or(0)
    }

    /// Number of rounds achieved.
    pub fn rounds_achieved(&self) -> u64 {
        self.rounds.len() as u64
    }
}

/// Run the perturbation construction against `target`.
///
/// ```
/// use maxreg::TreeMaxRegister;
/// use perturb::maxreg::{perturb_maxreg, PerturbConfig};
///
/// let reg = TreeMaxRegister::new(1 << 16);
/// let report = perturb_maxreg(
///     &reg,
///     PerturbConfig { writers: 32, factor: 2, max_rounds: 64 },
/// );
/// assert!(report.every_round_perturbed);
/// assert!(report.max_distinct_objects() >= 10); // Ω(log₂ m) probes
/// ```
pub fn perturb_maxreg<T: MaxRegTarget>(target: &T, cfg: PerturbConfig) -> PerturbReport {
    assert!(cfg.writers >= 1);
    let m = target.m();
    let rt = Runtime::free_running(cfg.writers + 1);
    let reader_pid = cfg.writers;
    let reader_ctx = rt.ctx(reader_pid);

    let mut rounds = Vec::new();
    let mut prev_value = target.read(&reader_ctx);
    let mut v: u64 = 0;
    let mut every_round_perturbed = true;
    let mut saturated = false;
    let mut value_exhausted = false;

    for round in 1..=cfg.max_rounds {
        let next = v.saturating_mul(cfg.factor).saturating_add(1);
        if next > m - 1 {
            value_exhausted = true;
            break;
        }
        if round as usize > cfg.writers {
            saturated = true;
            break;
        }
        v = next;
        let writer_ctx = rt.ctx(round as usize - 1);
        target.write(&writer_ctx, v);

        // Reader's solo run, traced.
        let _ = rt.take_trace();
        rt.enable_tracing();
        let steps_before = reader_ctx.steps_taken();
        let value = target.read(&reader_ctx);
        let reader_steps = reader_ctx.steps_taken() - steps_before;
        rt.disable_tracing();
        let trace = rt.take_trace();
        let distinct_objects: usize = trace
            .iter()
            .filter_map(|e| e.access())
            .filter(|a| a.pid == reader_pid)
            .map(|a| a.obj)
            .collect::<HashSet<_>>()
            .len();

        if value <= prev_value {
            every_round_perturbed = false;
        }
        prev_value = value;
        rounds.push(PerturbRound {
            round,
            written: v,
            reader_value: value,
            distinct_objects,
            reader_steps,
        });
    }

    PerturbReport {
        rounds,
        saturated,
        value_exhausted,
        every_round_perturbed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxreg::TreeMaxRegister;

    #[test]
    fn exact_register_is_perturbed_every_round() {
        let reg = TreeMaxRegister::new(1 << 20);
        let report = perturb_maxreg(
            &reg,
            PerturbConfig {
                writers: 64,
                factor: 2,
                max_rounds: 100,
            },
        );
        assert!(report.every_round_perturbed);
        assert!(report.value_exhausted, "values should hit the bound");
        // factor 2: v_r = 2^r − 1, so ~19 rounds before exceeding 2^20−1.
        assert!(report.rounds_achieved() >= 18);
        // The reader probes Ω(log L) distinct objects.
        assert!(report.max_distinct_objects() >= 10);
    }

    #[test]
    fn kmult_register_needs_exponentially_fewer_probes() {
        let m = 1u64 << 40;
        let k = 2u64;
        let exact = TreeMaxRegister::new(m);
        let approx = approx_objects::KmultBoundedMaxRegister::new(8, m, k);
        let cfg = PerturbConfig {
            writers: 64,
            factor: k * k,
            max_rounds: 100,
        };
        let exact_report = perturb_maxreg(&exact, cfg);
        let approx_report = perturb_maxreg(&approx, cfg);
        assert!(exact_report.every_round_perturbed);
        assert!(approx_report.every_round_perturbed);
        assert!(
            approx_report.max_distinct_objects() * 2 < exact_report.max_distinct_objects(),
            "approx {} vs exact {}",
            approx_report.max_distinct_objects(),
            exact_report.max_distinct_objects()
        );
    }

    #[test]
    fn writer_exhaustion_saturates() {
        let reg = TreeMaxRegister::new(1 << 60);
        let report = perturb_maxreg(
            &reg,
            PerturbConfig {
                writers: 3,
                factor: 2,
                max_rounds: 100,
            },
        );
        assert!(report.saturated);
        assert_eq!(report.rounds_achieved(), 3);
    }
}
