//! Shard-boundary behavior: keys colliding on one stripe, the `S = 1`
//! degenerate sharding against the unsharded reference, and crash
//! injection surfacing a pending flush exactly once.

use sketch::{specs, SharedTopKHandle, TopKAddTask, TopKConfig, TopKSketch};
use smr::sched::RoundRobin;
use smr::{Driver, Runtime};
use std::sync::Arc;

#[test]
fn same_stripe_keys_share_a_shard_and_its_maximum() {
    // Keys 1, 5, 9 all hash to stripe 1 of 4. The shard maximum must
    // dominate every flushed reading of the colliding keys, and top-k
    // must still separate them.
    let rt = Runtime::free_running(1);
    let ctx = rt.ctx(0);
    let sk = TopKSketch::new(TopKConfig {
        n: 1,
        keys: 12,
        shards: 4,
        k: 2,
        ..TopKConfig::default()
    });
    assert_eq!(sk.shard_of(1), sk.shard_of(5));
    assert_eq!(sk.shard_of(1), sk.shard_of(9));
    let mut h = sk.handle(0, 1);
    for (key, units) in [(1usize, 30u64), (5, 10), (9, 3)] {
        for _ in 0..units {
            h.add(&ctx, key, 1);
        }
    }
    let top = h.top_k(&ctx, 3);
    let keys: Vec<u64> = top.entries.iter().map(|&(k, _)| k).collect();
    assert_eq!(keys, vec![1, 5, 9], "heaviest first within one stripe");
    // The shard maximum is one-sided above every per-key reading.
    let m = sk.shard_max(sk.shard_of(1)).read(&ctx);
    let heaviest = top.entries[0].1;
    assert!(
        m >= heaviest,
        "shard max {m} below the heaviest flushed reading {heaviest}"
    );
}

#[test]
fn single_shard_read_path_equals_flat_reference() {
    // With S = 1 the pruned scan degenerates to a full scan: the sketch
    // read and the unsharded reference must return identical entries.
    let rt = Runtime::free_running(1);
    let ctx = rt.ctx(0);
    let sk = TopKSketch::new(TopKConfig {
        n: 1,
        keys: 16,
        shards: 1,
        k: 2,
        ..TopKConfig::default()
    });
    let mut h = sk.handle(0, 1);
    for i in 0..200usize {
        h.add(&ctx, (i * 7) % 16, 1 + (i as u64 % 3));
    }
    for q in [1usize, 3, 8, 16] {
        let sharded = h.top_k(&ctx, q);
        let flat = h.flat_top_k(&ctx, q);
        assert_eq!(sharded.entries, flat.entries, "q = {q}");
    }
}

#[test]
fn sharded_and_unsharded_sketches_agree_on_identical_traces() {
    // The same add sequence against S = 1 and S = 4 sketches: per-key
    // counter traces are identical, so the top-k entries must be too
    // (sharding changes the read path, not the counts).
    let run = |shards: usize| {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 8,
            shards,
            k: 2,
            ..TopKConfig::default()
        });
        let mut h = sk.handle(0, 2);
        for i in 0..100usize {
            h.add(&ctx, (i * 3) % 8, 1);
        }
        h.flush(&ctx);
        h.top_k(&ctx, 4).entries
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn crash_mid_flush_leaves_one_pending_record_in_the_snapshot() {
    // A flushing add suspended by a crash must surface as exactly one
    // pending record in history_snapshot() — never zero, never a
    // duplicate — on both backends.
    fn drive<B: smr::ExecBackend>(mut d: Driver<B>, steps_before_crash: usize) -> smr::History {
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 4,
            shards: 2,
            ..TopKConfig::default()
        });
        let handle: SharedTopKHandle = Arc::new(parking_lot::Mutex::new(sk.handle(0, 1)));
        d.submit_task(0, specs::topk_add(1, 2), TopKAddTask::new(handle, 1, 2));
        for _ in 0..steps_before_crash {
            let _ = d.step(0);
        }
        d.crash(0);
        d.history_snapshot()
    }
    for coop in [false, true] {
        for steps in 0..4 {
            let h = if coop {
                drive(Driver::coop(Runtime::coop(1)), steps)
            } else {
                drive(Driver::new(Runtime::gated(1)), steps)
            };
            assert_eq!(
                h.len(),
                1,
                "coop={coop} steps={steps}: exactly one record for the one op"
            );
            let rec = &h.ops()[0];
            assert_eq!(rec.resp, None, "coop={coop} steps={steps}: flush pending");
            assert_eq!(rec.steps, steps as u64);
        }
    }
}

#[test]
fn multi_process_writers_and_reader_under_a_gated_schedule() {
    // Three writers with disjoint key sets plus one reader, driven to
    // completion under round-robin on the coop backend; the final top-k
    // must identify the heavy key and pass the envelope checker.
    let rt = Runtime::coop(4);
    let mut d = Driver::coop(rt);
    let sk = TopKSketch::new(TopKConfig {
        n: 4,
        keys: 9,
        shards: 3,
        k: 2,
        ..TopKConfig::default()
    });
    for pid in 0..3usize {
        let h: SharedTopKHandle = Arc::new(parking_lot::Mutex::new(sk.handle(pid, 1)));
        let hot = pid; // writer pid hammers key pid, grazes key pid+3
        for i in 0..6u64 {
            let key = if i % 3 == 0 { hot + 3 } else { hot };
            d.submit_task(
                pid,
                specs::topk_add(key, 1),
                TopKAddTask::new(h.clone(), key, 1),
            );
        }
    }
    let reader: SharedTopKHandle = Arc::new(parking_lot::Mutex::new(sk.handle(3, 1)));
    d.submit_task(3, specs::topk_read(3), sketch::TopKReadTask::new(reader, 3));
    d.run_schedule(&mut RoundRobin::new());
    let env = lincheck::SketchEnvelope::new(2, 1);
    lincheck::check_topk_records(d.history(), &env).expect("envelope holds");
}
