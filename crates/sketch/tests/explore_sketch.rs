//! Exhaustive schedule exploration of small sketch configurations: every
//! interleaving (and every crash point) of 3-process × 2-op programs is
//! checked against the `lincheck::sketchlog` envelopes — zero violations,
//! turning the sampled accuracy claims of `exp_sketch` into proofs for
//! these configurations. The programs submit the *machine* forms
//! ([`sketch::tasks`]); the blocking forms drive the same machines, so
//! the coverage transfers.

use lincheck::sketchlog;
use lincheck::SketchEnvelope;
use sketch::{
    specs, QuantileConfig, QuantileObserveTask, QuantileSketch, QuantileValueTask,
    SharedQuantileHandle, SharedTopKHandle, TopKAddTask, TopKConfig, TopKReadTask, TopKSketch,
};
use smr::explore::{explore, ExploreConfig};
use smr::{CoopBackend, Driver, Runtime};
use std::sync::Arc;

/// 2 observers × 2 observations each (colliding buckets) + 1 reader × 2
/// quantile reads — the 3-proc × 2-op quantile program.
fn quantile_program() -> Driver<CoopBackend> {
    let mut d = Driver::coop(Runtime::coop(3));
    let sk = QuantileSketch::new(QuantileConfig {
        n: 3,
        k: 2,
        base: 2,
        max_value: 4, // buckets [1,2), [2,4), [4,8): 3 counter reads per read op
    });
    for pid in 0..2usize {
        let h: SharedQuantileHandle = Arc::new(parking_lot::Mutex::new(sk.handle(pid, 1)));
        // Both observers hit bucket 0 (contended) then bucket 1.
        d.submit_task(
            pid,
            specs::quantile_observe(1, 1),
            QuantileObserveTask::new(h.clone(), 1, 1),
        );
        d.submit_task(
            pid,
            specs::quantile_observe(3, 1),
            QuantileObserveTask::new(h.clone(), 3, 1),
        );
    }
    let r: SharedQuantileHandle = Arc::new(parking_lot::Mutex::new(sk.handle(2, 1)));
    d.submit_task(
        2,
        specs::quantile_read(1, 2),
        QuantileValueTask::new(r.clone(), 1, 2),
    );
    d.submit_task(
        2,
        specs::quantile_read(99, 100),
        QuantileValueTask::new(r.clone(), 99, 100),
    );
    d
}

#[test]
fn quantile_program_passes_on_every_interleaving() {
    let env = SketchEnvelope::new(2, 2); // two observers share the buckets
    let stats = explore(&ExploreConfig::exhaustive(200), quantile_program, |h| {
        sketchlog::check_quantile_records(h, &env, 2)
    });
    assert!(
        stats.all_ok(),
        "quantile envelope violated: {:?}",
        stats.violations
    );
    assert!(!stats.capped);
    assert!(
        stats.interleavings > 100,
        "suspiciously few interleavings: {}",
        stats.interleavings
    );
}

#[test]
fn quantile_program_survives_crash_injection() {
    // Every single-crash schedule: pending observations become optional
    // effects and the envelope must still hold on every cut.
    let env = SketchEnvelope::new(2, 2);
    let cfg = ExploreConfig {
        max_crashes: 1,
        ..ExploreConfig::default()
    };
    let stats = explore(&cfg, quantile_program, |h| {
        sketchlog::check_quantile_records(h, &env, 2)
    });
    assert!(
        stats.all_ok(),
        "quantile envelope violated under crashes: {:?}",
        stats.violations
    );
}

/// 2 writers on distinct keys/shards + 1 reader doing top-1 — the
/// pruned-read top-k program (writer 1's key lands in shard 1, writer
/// 0's in shard 0, so the reader's scan order and pruning bound are
/// exercised under every interleaving).
fn topk_program() -> Driver<CoopBackend> {
    let mut d = Driver::coop(Runtime::coop(3));
    let sk = TopKSketch::new(TopKConfig {
        n: 3,
        keys: 2,
        shards: 2,
        k: 3,
        max_accuracy: 2,
        max_bound: 64,
    });
    for pid in 0..2usize {
        let h: SharedTopKHandle = Arc::new(parking_lot::Mutex::new(sk.handle(pid, 1)));
        d.submit_task(
            pid,
            specs::topk_add(pid, 1),
            TopKAddTask::new(h.clone(), pid, 1),
        );
    }
    let r: SharedTopKHandle = Arc::new(parking_lot::Mutex::new(sk.handle(2, 1)));
    d.submit_task(2, specs::topk_read(1), TopKReadTask::new(r, 1));
    d
}

#[test]
fn topk_program_passes_on_every_interleaving() {
    // Commuting-step pruning keeps only one representative per
    // equivalence class — coverage is still exhaustive (every
    // distinguishable history cut is checked).
    let env = SketchEnvelope::new(3, 1); // one writer per key
    let stats = explore(&ExploreConfig::default(), topk_program, |h| {
        sketchlog::check_topk_records(h, &env)
    });
    assert!(
        stats.all_ok(),
        "top-k envelope violated: {:?}",
        stats.violations
    );
    assert!(!stats.capped);
    assert!(
        stats.interleavings > 100,
        "suspiciously few interleavings: {}",
        stats.interleavings
    );
}

#[test]
fn topk_program_survives_crash_injection() {
    let env = SketchEnvelope::new(3, 1);
    let cfg = ExploreConfig {
        max_crashes: 1,
        ..ExploreConfig::default()
    };
    let stats = explore(&cfg, topk_program, |h| {
        sketchlog::check_topk_records(h, &env)
    });
    assert!(
        stats.all_ok(),
        "top-k envelope violated under crashes: {:?}",
        stats.violations
    );
}

#[test]
fn crash_injection_surfaces_a_pending_flush_exactly_once() {
    // One writer, one flushing add, a crash allowed at every prefix:
    // each cut must contain exactly one record for the op — pending
    // while the flush is in flight, completed otherwise — never a
    // duplicate.
    let factory = || {
        let mut d = Driver::coop(Runtime::coop(1));
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 2,
            shards: 2,
            k: 2,
            max_accuracy: 2,
            max_bound: 64,
        });
        let h: SharedTopKHandle = Arc::new(parking_lot::Mutex::new(sk.handle(0, 1)));
        d.submit_task(0, specs::topk_add(0, 2), TopKAddTask::new(h, 0, 2));
        d
    };
    let cfg = ExploreConfig {
        max_crashes: 1,
        prune: false,
        ..ExploreConfig::default()
    };
    let mut pending_cuts = 0u64;
    let stats = explore(&cfg, factory, |h| {
        if h.len() != 1 {
            return Err(format!("expected exactly one record, got {}", h.len()));
        }
        if h.ops()[0].resp.is_none() {
            pending_cuts += 1;
        }
        Ok(())
    });
    assert!(stats.all_ok(), "{:?}", stats.violations);
    assert!(
        pending_cuts > 0,
        "some crash point must catch the flush mid-flight"
    );
}
