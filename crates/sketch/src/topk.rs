//! The sharded heavy-hitters / top-k sketch.
//!
//! ## Layout
//!
//! ```text
//!            keys 0..K, striped by key mod S
//!   shard 0:  [ctr 0] [ctr S] [ctr 2S] …     ──►  [shard max 0]
//!   shard 1:  [ctr 1] [ctr S+1] …            ──►  [shard max 1]
//!     ⋮                                              ⋮
//!   shard S−1: …                             ──►  [shard max S−1]
//! ```
//!
//! Every key owns a [`KmultCounter`] (accuracy `k`); every shard owns a
//! [`KmultBoundedMaxRegister`] (accuracy `max_accuracy`) into which each
//! flush writes the counter value it just read. The shard maximum is
//! therefore a *one-sided-from-above* summary of the shard: a max
//! register read returns at least every value ever written, and every
//! completed flush wrote at least `visible/(w+1)` of the counts it
//! covered — which is exactly the inequality the pruned read path and
//! the `lincheck::sketchlog` envelope lean on.
//!
//! ## The read path
//!
//! [`TopKHandle::top_k`] reads the `S` shard maxima (`S` max-register
//! reads), sorts shards by descending maximum, and scans shards in that
//! order, keeping the `q` heaviest `(count, key)` candidates. Before
//! scanning a shard it checks the **pruning bound**: once `q` candidates
//! are held and the next shard's maximum is below the current `q`-th
//! count, no remaining shard can contribute (maxima are sorted), and the
//! read stops — touching `O(q + S)` counters on skewed key
//! distributions instead of all `K`. With `S = 1` the bound never
//! triggers before the only shard is scanned, so the read degenerates to
//! the unsharded reference scan ([`TopKHandle::flat_top_k`]).
//!
//! ## Per-shard key directories
//!
//! Inside a shard the scan does not walk every slot either: each shard
//! owns a [`ShardDir`] — a bitmap with one bit per slot, set
//! (`fetch_or`, `Release`) by a flush **before** the flush applies its
//! first counter increment. The read path jumps from hot slot to hot
//! slot (`Acquire` word loads, zero primitives), so keys that were
//! never flushed cost the read nothing even when they share a shard
//! with a heavy hitter. The mark-before-increment order makes the skip
//! sound: a clear bit is witnessed *before* any increment of that key
//! could have become visible, so skipping the slot is indistinguishable
//! from reading the counter and observing `0` — which the candidate set
//! discards anyway.

use crate::machines::{TopKAddMachine, TopKFlushMachine, TopKReadMachine};
use approx_objects::{KmultBoundedMaxRegister, KmultCounter, KmultCounterHandle};
use lincheck::sketchlog;
use smr::{Poll, ProcCtx};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Construction parameters of a [`TopKSketch`].
#[derive(Debug, Clone, Copy)]
pub struct TopKConfig {
    /// Number of processes sharing the sketch.
    pub n: usize,
    /// Fixed key space: keys are `0..keys`.
    pub keys: usize,
    /// Shard count `S` (keys striped by `key mod S`).
    pub shards: usize,
    /// Accuracy parameter of the per-key counters.
    pub k: u64,
    /// Accuracy parameter of the per-shard max registers.
    pub max_accuracy: u64,
    /// Bound `m` of the per-shard max registers. Flushed counter reads
    /// must stay below it (asserted) — the envelope does not survive
    /// clamping.
    pub max_bound: u64,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig {
            n: 1,
            keys: 16,
            shards: 4,
            k: 2,
            max_accuracy: 2,
            max_bound: 1 << 48,
        }
    }
}

/// A shard's directory of *hot* slots: one bit per slot (slot `t` of
/// shard `s` holds key `s + t·S`), set once the slot's key has been
/// flushed at least once and never cleared. Marking is **not a
/// primitive** — the directory is read-path metadata, like the handle's
/// local buffer, not a base object of the model.
///
/// Ordering contract: a flush marks with `Release` *before* applying
/// any increment to the slot's counter; the read scan loads words with
/// `Acquire`. A reader that observes a clear bit therefore cannot have
/// missed a flush whose increments it could observe — skipping the slot
/// is equivalent to reading the counter and getting `0`.
pub struct ShardDir {
    words: Vec<AtomicU64>,
    slots: usize,
}

impl ShardDir {
    fn new(slots: usize) -> Self {
        ShardDir {
            words: (0..slots.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            slots,
        }
    }

    /// Number of slots the directory covers.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Mark `slot` hot. Called by the flush path before its first
    /// counter increment (zero primitives).
    pub(crate) fn mark(&self, slot: usize) {
        assert!(slot < self.slots, "slot {slot} out of range");
        self.words[slot / 64].fetch_or(1 << (slot % 64), Ordering::Release);
    }

    /// Whether `slot` has ever been marked.
    pub fn is_hot(&self, slot: usize) -> bool {
        slot < self.slots && self.words[slot / 64].load(Ordering::Acquire) >> (slot % 64) & 1 == 1
    }

    /// Smallest hot slot at or after `from`, if any. Zero primitives:
    /// one `Acquire` word load per 64 slots examined.
    pub fn next_hot_slot(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        if word >= self.words.len() {
            return None;
        }
        let mut bits = self.words[word].load(Ordering::Acquire) & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                let slot = word * 64 + bits.trailing_zeros() as usize;
                return (slot < self.slots).then_some(slot);
            }
            word += 1;
            if word == self.words.len() {
                return None;
            }
            bits = self.words[word].load(Ordering::Acquire);
        }
    }
}

/// The shared part of the sharded top-k sketch. Create per-process
/// [`TopKHandle`]s with [`TopKSketch::handle`].
pub struct TopKSketch {
    cfg: TopKConfig,
    /// One k-multiplicative counter per key.
    counters: Vec<Arc<KmultCounter>>,
    /// One approximate max register per shard.
    shard_max: Vec<KmultBoundedMaxRegister>,
    /// One hot-slot directory per shard (see [`ShardDir`]).
    dirs: Vec<ShardDir>,
}

impl TopKSketch {
    /// A sketch for `cfg.n` processes over `cfg.keys` keys in
    /// `cfg.shards` shards.
    ///
    /// # Panics
    /// Panics on degenerate configurations (`n == 0`, `keys == 0`,
    /// `shards == 0` or `shards > keys`).
    pub fn new(cfg: TopKConfig) -> Arc<Self> {
        assert!(cfg.n > 0, "need at least one process");
        assert!(cfg.keys > 0, "need at least one key");
        assert!(
            cfg.shards > 0 && cfg.shards <= cfg.keys,
            "shard count must be in 1..=keys"
        );
        Arc::new(TopKSketch {
            cfg,
            counters: (0..cfg.keys)
                .map(|_| KmultCounter::new(cfg.n, cfg.k))
                .collect(),
            shard_max: (0..cfg.shards)
                .map(|_| KmultBoundedMaxRegister::new(cfg.n, cfg.max_bound, cfg.max_accuracy))
                .collect(),
            dirs: (0..cfg.shards)
                .map(|s| ShardDir::new((cfg.keys - s).div_ceil(cfg.shards)))
                .collect(),
        })
    }

    /// The construction parameters.
    pub fn config(&self) -> &TopKConfig {
        &self.cfg
    }

    /// The shard holding `key`.
    pub fn shard_of(&self, key: usize) -> usize {
        key % self.cfg.shards
    }

    /// The counter of `key` (for shadow checks and tests).
    pub fn counter(&self, key: usize) -> &Arc<KmultCounter> {
        &self.counters[key]
    }

    /// The max register of shard `s` (for shadow checks and tests).
    pub fn shard_max(&self, s: usize) -> &KmultBoundedMaxRegister {
        &self.shard_max[s]
    }

    /// The hot-slot directory of shard `s`.
    pub fn dir(&self, s: usize) -> &ShardDir {
        &self.dirs[s]
    }

    /// A handle for process `pid` that flushes once `flush_every` units
    /// are buffered (`1` disables batching: every add flushes).
    ///
    /// # Panics
    /// Panics if `pid` is out of range or `flush_every == 0`.
    pub fn handle(self: &Arc<Self>, pid: usize, flush_every: u64) -> TopKHandle {
        assert!(pid < self.cfg.n, "pid {pid} out of range");
        assert!(flush_every >= 1, "flush threshold must be at least 1");
        TopKHandle {
            sketch: self.clone(),
            pid,
            flush_every,
            handles: (0..self.cfg.keys).map(|_| None).collect(),
            buffered_total: 0,
        }
    }
}

/// The result of a top-k read: up to `q` `(key, approximate count)`
/// entries, heaviest first (ties broken by ascending key). Only keys
/// with nonzero approximate counts are reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKResult {
    /// The requested `q`.
    pub q: usize,
    /// Reported entries, ordered by descending count then ascending key.
    pub entries: Vec<(u64, u128)>,
}

impl TopKResult {
    /// The smallest reported count (0 when nothing was reported).
    pub fn kth(&self) -> u128 {
        self.entries.last().map_or(0, |&(_, c)| c)
    }

    /// The `(len, kth)` digest recorded in the typed event log
    /// ([`sketchlog::pack_topk_ret`]).
    pub fn digest(&self) -> u128 {
        sketchlog::pack_topk_ret(self.entries.len(), self.kth())
    }
}

/// Per-process side of the sketch: one lazily-created
/// [`KmultCounterHandle`] per key, plus the batched-write buffer (the
/// deferred units live inside the per-key core handles; the handle
/// tracks their total against `flush_every`).
pub struct TopKHandle {
    pub(crate) sketch: Arc<TopKSketch>,
    pub(crate) pid: usize,
    pub(crate) flush_every: u64,
    pub(crate) handles: Vec<Option<KmultCounterHandle>>,
    pub(crate) buffered_total: u64,
}

impl TopKHandle {
    /// The sketch this handle operates on.
    pub fn sketch(&self) -> &Arc<TopKSketch> {
        &self.sketch
    }

    /// This handle's process id.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The flush threshold.
    pub fn flush_every(&self) -> u64 {
        self.flush_every
    }

    /// Units buffered locally and not yet flushed (invisible to reads).
    pub fn buffered(&self) -> u64 {
        self.buffered_total
    }

    /// The per-key core handle, created on first touch.
    pub(crate) fn counter_mut(&mut self, key: usize) -> &mut KmultCounterHandle {
        let pid = self.pid;
        let sketch = &self.sketch;
        self.handles[key].get_or_insert_with(|| sketch.counters[key].handle(pid))
    }

    /// Buffer `amount` units for `key` (zero primitives).
    pub(crate) fn defer_add(&mut self, key: usize, amount: u64) {
        assert!(key < self.sketch.cfg.keys, "key {key} out of range");
        assert!(amount > 0, "an add needs at least one unit");
        self.counter_mut(key).defer(amount);
        self.buffered_total = self
            .buffered_total
            .checked_add(amount)
            .expect("buffered total overflow");
    }

    /// Smallest key at or after `from` with buffered units, if any.
    pub(crate) fn next_buffered_key(&self, from: usize) -> Option<usize> {
        (from..self.sketch.cfg.keys)
            .find(|&key| self.handles[key].as_ref().is_some_and(|h| h.deferred() > 0))
    }

    /// Add `amount` units to `key`, flushing if the buffer reaches the
    /// threshold. Drives [`TopKAddMachine`] — the one transcription the
    /// task form polls too.
    pub fn add(&mut self, ctx: &ProcCtx, key: usize, amount: u64) {
        let mut m = TopKAddMachine::new(key, amount);
        while m.step(self, ctx).is_pending() {}
    }

    /// Flush every buffered unit: per dirty key (ascending), batch the
    /// deferred increments into the key's counter, read it back and
    /// publish the reading to the key's shard maximum. Drives
    /// [`TopKFlushMachine`].
    pub fn flush(&mut self, ctx: &ProcCtx) {
        let mut m = TopKFlushMachine::new();
        while m.step(self, ctx).is_pending() {}
    }

    /// The `q` heaviest keys by approximate count, via the pruned
    /// shard scan (see the [module docs](self)). Drives
    /// [`TopKReadMachine`].
    pub fn top_k(&mut self, ctx: &ProcCtx, q: usize) -> TopKResult {
        let mut m = TopKReadMachine::new(q);
        loop {
            if let Poll::Ready(out) = m.step(self, ctx) {
                return out;
            }
        }
    }

    /// The unsharded reference read: scan *every* key counter directly
    /// (ascending key, no shard maxima) and select the `q` heaviest.
    /// The `S = 1` read path must agree with this under quiescence —
    /// pinned by the sharding tests.
    pub fn flat_top_k(&mut self, ctx: &ProcCtx, q: usize) -> TopKResult {
        assert!(q >= 1, "q must be at least 1");
        let mut entries: Vec<(u64, u128)> = Vec::new();
        for key in 0..self.sketch.cfg.keys {
            let c = self.counter_mut(key).read(ctx);
            if c > 0 {
                entries.push((key as u64, c));
                entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                entries.truncate(q);
            }
        }
        TopKResult { q, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::Runtime;

    #[test]
    fn construction_validates() {
        let sk = TopKSketch::new(TopKConfig {
            n: 2,
            keys: 8,
            shards: 4,
            ..TopKConfig::default()
        });
        assert_eq!(sk.shard_of(5), 1);
        assert_eq!(sk.config().keys, 8);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn more_shards_than_keys_rejected() {
        let _ = TopKSketch::new(TopKConfig {
            keys: 2,
            shards: 4,
            ..TopKConfig::default()
        });
    }

    #[test]
    fn single_process_top_k_finds_heavy_hitters() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 16,
            shards: 4,
            k: 2,
            ..TopKConfig::default()
        });
        let mut h = sk.handle(0, 1);
        // Key 3: 100 units; key 7: 40; key 12: 5; the rest: 1 each.
        for (key, units) in [(3usize, 100u64), (7, 40), (12, 5), (0, 1), (9, 1)] {
            for _ in 0..units {
                h.add(&ctx, key, 1);
            }
        }
        let top = h.top_k(&ctx, 2);
        assert_eq!(top.entries.len(), 2);
        assert_eq!(top.entries[0].0, 3);
        assert_eq!(top.entries[1].0, 7);
        // Counts within the per-counter envelope (single writer, k=2).
        assert!(top.entries[0].1 >= 50 && top.entries[0].1 <= 200);
        assert!(top.entries[1].1 >= 20 && top.entries[1].1 <= 80);
        // The digest round-trips.
        let (len, kth) = sketchlog::unpack_topk_ret(top.digest());
        assert_eq!(len, 2);
        assert_eq!(kth, top.entries[1].1);
    }

    #[test]
    fn batched_adds_defer_until_threshold() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 4,
            shards: 2,
            ..TopKConfig::default()
        });
        let mut w = sk.handle(0, 10);
        for _ in 0..9 {
            w.add(&ctx, 1, 1);
        }
        assert_eq!(w.buffered(), 9, "below threshold: everything deferred");
        assert_eq!(ctx.steps_taken(), 0, "deferring costs no primitives");
        let mut r = sk.handle(0, 1);
        assert!(r.top_k(&ctx, 1).entries.is_empty(), "nothing visible yet");
        w.add(&ctx, 1, 1); // reaches 10: flush
        assert_eq!(w.buffered(), 0);
        let top = r.top_k(&ctx, 1);
        assert_eq!(top.entries.len(), 1);
        assert_eq!(top.entries[0].0, 1);
        assert!(top.entries[0].1 >= 5 && top.entries[0].1 <= 20);
    }

    #[test]
    fn explicit_flush_drains_every_key() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 6,
            shards: 3,
            ..TopKConfig::default()
        });
        let mut w = sk.handle(0, 1_000);
        for key in 0..6 {
            w.add(&ctx, key, 3);
        }
        assert_eq!(w.buffered(), 18);
        w.flush(&ctx);
        assert_eq!(w.buffered(), 0);
        let top = w.flat_top_k(&ctx, 6);
        assert_eq!(top.entries.len(), 6, "all keys visible after flush");
    }

    #[test]
    fn pruned_read_touches_few_counters_on_skew() {
        // One hot shard; a warm reader's repeat top-k must cost far
        // fewer primitives than scanning all keys.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let keys = 256;
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys,
            shards: 16,
            k: 2,
            ..TopKConfig::default()
        });
        let mut w = sk.handle(0, 1);
        for _ in 0..200 {
            w.add(&ctx, 0, 1); // shard 0
        }
        for key in 1..keys {
            if key % 16 != 0 {
                w.add(&ctx, key, 1); // one unit everywhere else
            }
        }
        let mut r = sk.handle(0, 1);
        let _ = r.top_k(&ctx, 1); // warm the read cursors once
        let s0 = ctx.steps_taken();
        let top = r.top_k(&ctx, 1);
        let cost = ctx.steps_taken() - s0;
        assert_eq!(top.entries[0].0, 0);
        // 16 max-register reads + the hot shard's 16 keys (1 step each
        // re-read) + slack; far below the 256-key flat scan.
        assert!(cost < 128, "warm pruned top-1 cost {cost} steps");
    }

    #[test]
    fn shard_dir_marks_flushed_keys_and_skips_cold_slots() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 256,
            shards: 4,
            ..TopKConfig::default()
        });
        let mut h = sk.handle(0, 1);
        // Flush keys 8 (shard 0, slot 2) and 13 (shard 1, slot 3) only.
        h.add(&ctx, 8, 5);
        h.add(&ctx, 13, 2);
        assert!(sk.dir(0).is_hot(2), "flushed slot marked");
        assert!(sk.dir(1).is_hot(3), "flushed slot marked");
        assert!(!sk.dir(0).is_hot(0), "never-flushed slot stays cold");
        assert_eq!(sk.dir(0).next_hot_slot(0), Some(2));
        assert_eq!(sk.dir(0).next_hot_slot(3), None);
        assert_eq!(sk.dir(2).next_hot_slot(0), None, "empty shard");
        // A full-width read touches only the shard maxima and the two
        // hot keys — the 254 cold keys cost nothing.
        let mut r = sk.handle(0, 1);
        let s0 = ctx.steps_taken();
        let top = r.top_k(&ctx, 256);
        let cost = ctx.steps_taken() - s0;
        assert_eq!(top.entries.len(), 2);
        assert_eq!(top.entries[0].0, 8);
        assert_eq!(top.entries[1].0, 13);
        assert!(cost < 40, "cold slots charged the read: {cost} steps");
    }

    #[test]
    fn directory_sizes_cover_uneven_shard_striping() {
        // keys = 10, shards = 4: shards 0 and 1 hold 3 slots, 2 and 3
        // hold 2 — the last key of each stripe must be markable.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 10,
            shards: 4,
            ..TopKConfig::default()
        });
        assert_eq!(sk.dir(0).slots(), 3);
        assert_eq!(sk.dir(1).slots(), 3);
        assert_eq!(sk.dir(2).slots(), 2);
        assert_eq!(sk.dir(3).slots(), 2);
        let mut h = sk.handle(0, 1);
        for key in 0..10 {
            h.add(&ctx, key, 1);
        }
        let top = h.top_k(&ctx, 10);
        assert_eq!(top.entries.len(), 10, "every key visible via its dir");
    }

    #[test]
    fn zero_count_keys_are_never_reported() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 8,
            shards: 2,
            ..TopKConfig::default()
        });
        let mut h = sk.handle(0, 1);
        h.add(&ctx, 2, 1);
        let top = h.top_k(&ctx, 5);
        assert_eq!(top.entries.len(), 1, "only key 2 has a nonzero count");
        assert_eq!(top.kth(), top.entries[0].1);
    }
}
