//! # sketch — approximate-aggregation workloads over k-multiplicative
//! primitives
//!
//! The paper's deterministic approximate objects are building blocks;
//! this crate composes them into the serving-shaped aggregations a
//! heavy-traffic deployment actually queries:
//!
//! * [`TopKSketch`] — a **sharded heavy-hitters sketch** over a fixed
//!   key space. Every key owns a [`KmultCounter`]; keys are striped
//!   across `S` shards (`shard = key mod S`), and each shard carries a
//!   [`KmultBoundedMaxRegister`] tracking (one-sided, from below by at
//!   most a `(w+1)` factor) the heaviest approximate count flushed into
//!   the shard. A top-k read collects the `S` shard maxima, scans shards
//!   in descending-maximum order and **stops as soon as the next shard's
//!   maximum cannot beat the current k-th candidate** — on skewed
//!   workloads it touches `O(q + S)` counters instead of all keys, while
//!   the composed accuracy envelope stays checkable on *every*
//!   interleaving (see `lincheck::sketchlog`).
//! * [`QuantileSketch`] — a **multiplicative-bucket histogram**: bucket
//!   `i` covers values `[b^i, b^(i+1))` and its population is a
//!   [`KmultCounter`], so a `quantile(φ)` / [`rank`](QuantileHandle::rank)
//!   read answers with `(k·b)`-multiplicative rank error derived from
//!   the per-counter bounds (`k` from the counters, `b` from the bucket
//!   width).
//! * **Batched write handles** ([`TopKHandle`], [`QuantileHandle`]) —
//!   per-process handles buffer increments locally
//!   ([`KmultCounterHandle::defer`]) and flush when the buffer reaches a
//!   threshold (or explicitly), amortizing switch-array traffic for hot
//!   writers. Buffered units are invisible until flushed; the envelope
//!   checkers discount forced counts by the flush threshold (the
//!   `buffer_slack` of [`lincheck::SketchEnvelope`]).
//!
//! Every operation exists in two forms sharing **one transcription**:
//! blocking handle methods drive the same one-primitive-per-step
//! machines ([`machines`]) the [`OpTask`](smr::OpTask) forms
//! ([`tasks`]) poll — so small configurations run under `smr::explore`
//! (every interleaving checked) and large ones under both execution
//! backends with byte-identical primitive sequences.
//!
//! ## Quick start
//!
//! ```
//! use sketch::{TopKConfig, TopKSketch};
//! use smr::Runtime;
//!
//! let rt = Runtime::free_running(2);
//! let sk = TopKSketch::new(TopKConfig {
//!     n: 2,
//!     keys: 8,
//!     shards: 2,
//!     k: 2,
//!     ..TopKConfig::default()
//! });
//! let mut writer = sk.handle(0, 1); // flush_every = 1: no batching
//! let ctx0 = rt.ctx(0);
//! for _ in 0..10 {
//!     writer.add(&ctx0, 3, 1);
//! }
//! let mut reader = sk.handle(1, 1);
//! let ctx1 = rt.ctx(1);
//! let top = reader.top_k(&ctx1, 1);
//! assert_eq!(top.entries[0].0, 3, "key 3 is the heavy hitter");
//! let c = top.entries[0].1;
//! assert!(c >= 10 / 2 && c <= 10 * 2, "within the k-envelope");
//! ```

pub mod machines;
pub mod quantile;
pub mod tasks;
pub mod topk;

pub use machines::{
    QuantileFlushMachine, QuantileObserveMachine, QuantileValueMachine, RankMachine,
    TopKAddMachine, TopKFlushMachine, TopKReadMachine,
};
pub use quantile::{QuantileConfig, QuantileHandle, QuantileSketch};
pub use tasks::{
    specs, QuantileFlushTask, QuantileObserveTask, QuantileValueTask, RankTask,
    SharedQuantileHandle, SharedTopKHandle, TopKAddTask, TopKFlushTask, TopKReadTask,
};
pub use topk::{ShardDir, TopKConfig, TopKHandle, TopKResult, TopKSketch};

// Re-exported so sketch users name the primitive types without an extra
// dependency edge.
pub use approx_objects::{KmultBoundedMaxRegister, KmultCounter, KmultCounterHandle};
