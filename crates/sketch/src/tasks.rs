//! [`OpTask`] forms of the sketch operations, for submission to a
//! [`Driver`](smr::Driver) on either execution backend.
//!
//! The tasks poll the same machines ([`machines`](crate::machines)) the
//! blocking handle methods drive — one transcription, byte-identical
//! primitive sequences. Successive operations of a process share its
//! handle behind an `Arc<Mutex<_>>` (the uncontended-by-construction
//! idiom of `core::kcounter::tasks`).
//!
//! Submit each task with the matching [`specs`] descriptor: the typed
//! event log then carries exactly the payloads the
//! `lincheck::sketchlog` checkers decode — key/amount for adds,
//! value/amount for observations, the `(len, kth)` digest for top-k
//! reads, the rank ratio for quantile reads.

use crate::machines::{
    QuantileFlushMachine, QuantileObserveMachine, QuantileValueMachine, RankMachine,
    TopKAddMachine, TopKFlushMachine, TopKReadMachine,
};
use crate::quantile::QuantileHandle;
use crate::topk::TopKHandle;
use parking_lot::Mutex;
use smr::{OpTask, Poll, ProcCtx};
use std::sync::Arc;

/// A shareable top-k handle, as tasks need it. One per process.
pub type SharedTopKHandle = Arc<Mutex<TopKHandle>>;

/// A shareable quantile handle, as tasks need it. One per process.
pub type SharedQuantileHandle = Arc<Mutex<QuantileHandle>>;

/// [`OpSpec`](smr::OpSpec) descriptors matching each task's event-log
/// payload — the submission side of the `lincheck::sketchlog` wire
/// format.
pub mod specs {
    use lincheck::sketchlog;
    use smr::OpSpec;

    /// Descriptor of a [`TopKAddTask`](super::TopKAddTask).
    pub fn topk_add(key: usize, amount: u64) -> OpSpec {
        OpSpec::custom(
            sketchlog::TOPK_ADD,
            sketchlog::pack_keyed(key as u64, amount),
        )
    }

    /// Descriptor of a [`TopKReadTask`](super::TopKReadTask).
    pub fn topk_read(q: usize) -> OpSpec {
        OpSpec::custom(sketchlog::TOPK_READ, q as u128)
    }

    /// Descriptor of a [`QuantileObserveTask`](super::QuantileObserveTask).
    pub fn quantile_observe(value: u64, amount: u64) -> OpSpec {
        OpSpec::custom(
            sketchlog::QUANTILE_OBSERVE,
            sketchlog::pack_keyed(value, amount),
        )
    }

    /// Descriptor of a [`QuantileValueTask`](super::QuantileValueTask).
    pub fn quantile_read(num: u32, den: u32) -> OpSpec {
        OpSpec::custom(sketchlog::QUANTILE_READ, sketchlog::pack_ratio(num, den))
    }

    /// Descriptor of a [`RankTask`](super::RankTask).
    pub fn rank(v: u64) -> OpSpec {
        OpSpec::custom(sketchlog::RANK_READ, u128::from(v))
    }

    /// Descriptor of an explicit flush
    /// ([`TopKFlushTask`](super::TopKFlushTask) /
    /// [`QuantileFlushTask`](super::QuantileFlushTask)).
    pub fn flush() -> OpSpec {
        OpSpec::custom(sketchlog::FLUSH, 0)
    }
}

/// `TopKHandle::add` as a resumable task. Submit with
/// [`specs::topk_add`].
pub struct TopKAddTask {
    handle: SharedTopKHandle,
    machine: TopKAddMachine,
}

impl TopKAddTask {
    /// An add of `amount` units to `key`.
    pub fn new(handle: SharedTopKHandle, key: usize, amount: u64) -> Self {
        TopKAddTask {
            handle,
            machine: TopKAddMachine::new(key, amount),
        }
    }
}

impl OpTask for TopKAddTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let mut h = self.handle.lock();
        self.machine.step(&mut h, ctx).map(|()| 0)
    }
}

/// `TopKHandle::flush` as a resumable task. Submit with
/// [`specs::flush`].
pub struct TopKFlushTask {
    handle: SharedTopKHandle,
    machine: TopKFlushMachine,
}

impl TopKFlushTask {
    /// An explicit flush of every buffered unit.
    pub fn new(handle: SharedTopKHandle) -> Self {
        TopKFlushTask {
            handle,
            machine: TopKFlushMachine::new(),
        }
    }
}

impl OpTask for TopKFlushTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let mut h = self.handle.lock();
        self.machine.step(&mut h, ctx).map(|()| 0)
    }
}

/// `TopKHandle::top_k` as a resumable task; resolves to the
/// [`TopKResult::digest`](crate::TopKResult::digest). Submit with
/// [`specs::topk_read`] carrying the same `q`.
pub struct TopKReadTask {
    handle: SharedTopKHandle,
    machine: TopKReadMachine,
}

impl TopKReadTask {
    /// A top-`q` read.
    pub fn new(handle: SharedTopKHandle, q: usize) -> Self {
        TopKReadTask {
            handle,
            machine: TopKReadMachine::new(q),
        }
    }
}

impl OpTask for TopKReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let mut h = self.handle.lock();
        self.machine.step(&mut h, ctx).map(|out| out.digest())
    }
}

/// `QuantileHandle::observe` as a resumable task. Submit with
/// [`specs::quantile_observe`].
pub struct QuantileObserveTask {
    handle: SharedQuantileHandle,
    machine: QuantileObserveMachine,
}

impl QuantileObserveTask {
    /// An observation of `value`, `amount` times.
    pub fn new(handle: SharedQuantileHandle, value: u64, amount: u64) -> Self {
        QuantileObserveTask {
            handle,
            machine: QuantileObserveMachine::new(value, amount),
        }
    }
}

impl OpTask for QuantileObserveTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let mut h = self.handle.lock();
        self.machine.step(&mut h, ctx).map(|()| 0)
    }
}

/// `QuantileHandle::flush` as a resumable task. Submit with
/// [`specs::flush`].
pub struct QuantileFlushTask {
    handle: SharedQuantileHandle,
    machine: QuantileFlushMachine,
}

impl QuantileFlushTask {
    /// An explicit flush of every buffered observation.
    pub fn new(handle: SharedQuantileHandle) -> Self {
        QuantileFlushTask {
            handle,
            machine: QuantileFlushMachine::new(),
        }
    }
}

impl OpTask for QuantileFlushTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let mut h = self.handle.lock();
        self.machine.step(&mut h, ctx).map(|()| 0)
    }
}

/// `QuantileHandle::quantile` as a resumable task; resolves to the
/// returned value. Submit with [`specs::quantile_read`] carrying the
/// same ratio.
pub struct QuantileValueTask {
    handle: SharedQuantileHandle,
    machine: QuantileValueMachine,
}

impl QuantileValueTask {
    /// A `quantile(num/den)` read.
    pub fn new(handle: SharedQuantileHandle, num: u32, den: u32) -> Self {
        QuantileValueTask {
            handle,
            machine: QuantileValueMachine::new(num, den),
        }
    }
}

impl OpTask for QuantileValueTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let mut h = self.handle.lock();
        self.machine.step(&mut h, ctx)
    }
}

/// `QuantileHandle::rank` as a resumable task; resolves to the
/// approximate rank. Submit with [`specs::rank`] carrying the same
/// value.
pub struct RankTask {
    handle: SharedQuantileHandle,
    machine: RankMachine,
}

impl RankTask {
    /// A `rank(v)` read against `handle`'s sketch.
    pub fn new(handle: SharedQuantileHandle, v: u64) -> Self {
        let machine = RankMachine::new(handle.lock().sketch(), v);
        RankTask { handle, machine }
    }
}

impl OpTask for RankTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let mut h = self.handle.lock();
        self.machine.step(&mut h, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::{QuantileConfig, QuantileSketch};
    use crate::topk::{TopKConfig, TopKSketch};
    use lincheck::sketchlog;
    use smr::Runtime;

    fn run_task<T: OpTask>(mut t: T, ctx: &ProcCtx) -> u128 {
        loop {
            if let Poll::Ready(v) = t.poll(ctx) {
                return v;
            }
        }
    }

    #[test]
    fn topk_task_forms_match_blocking_forms() {
        let rt_a = Runtime::free_running(1);
        let ctx_a = rt_a.ctx(0);
        let rt_b = Runtime::free_running(1);
        let ctx_b = rt_b.ctx(0);
        let cfg = TopKConfig {
            n: 1,
            keys: 8,
            shards: 4,
            ..TopKConfig::default()
        };
        let sk_a = TopKSketch::new(cfg);
        let mut h_a = sk_a.handle(0, 2);
        let sk_b = TopKSketch::new(cfg);
        let h_b: SharedTopKHandle = Arc::new(Mutex::new(sk_b.handle(0, 2)));

        for i in 0..30usize {
            let (key, amount) = (i % 8, 1);
            h_a.add(&ctx_a, key, amount);
            let _ = run_task(TopKAddTask::new(h_b.clone(), key, amount), &ctx_b);
        }
        let top_a = h_a.top_k(&ctx_a, 3);
        let digest_b = run_task(TopKReadTask::new(h_b.clone(), 3), &ctx_b);
        assert_eq!(top_a.digest(), digest_b);
        assert_eq!(
            rt_a.steps_of(0),
            rt_b.steps_of(0),
            "primitive counts diverged between forms"
        );
    }

    #[test]
    fn quantile_task_forms_match_blocking_forms() {
        let rt_a = Runtime::free_running(1);
        let ctx_a = rt_a.ctx(0);
        let rt_b = Runtime::free_running(1);
        let ctx_b = rt_b.ctx(0);
        let cfg = QuantileConfig {
            n: 1,
            k: 2,
            base: 2,
            max_value: 1 << 10,
        };
        let s_a = QuantileSketch::new(cfg);
        let mut h_a = s_a.handle(0, 3);
        let s_b = QuantileSketch::new(cfg);
        let h_b: SharedQuantileHandle = Arc::new(Mutex::new(s_b.handle(0, 3)));

        for (v, n) in [(3u64, 10u64), (50, 4), (900, 2)] {
            h_a.observe(&ctx_a, v, n);
            let _ = run_task(QuantileObserveTask::new(h_b.clone(), v, n), &ctx_b);
        }
        h_a.flush(&ctx_a);
        let _ = run_task(QuantileFlushTask::new(h_b.clone()), &ctx_b);
        for (num, den) in [(1u32, 2u32), (9, 10), (99, 100)] {
            let qa = h_a.quantile(&ctx_a, num, den);
            let qb = run_task(QuantileValueTask::new(h_b.clone(), num, den), &ctx_b);
            assert_eq!(qa, qb, "quantile {num}/{den}");
        }
        for v in [0u64, 7, 63, 1 << 10] {
            let ra = h_a.rank(&ctx_a, v);
            let rb = run_task(RankTask::new(h_b.clone(), v), &ctx_b);
            assert_eq!(ra, rb, "rank({v})");
        }
        assert_eq!(
            rt_a.steps_of(0),
            rt_b.steps_of(0),
            "primitive counts diverged between forms"
        );
    }

    #[test]
    fn specs_round_trip_through_the_wire_format() {
        let spec = specs::topk_add(5, 3);
        let smr::OpKind::Custom { label, arg, .. } = spec.kind(0) else {
            panic!("sketch specs are custom ops");
        };
        assert_eq!(label, sketchlog::TOPK_ADD);
        assert_eq!(sketchlog::unpack_keyed(arg), (5, 3));
    }
}
