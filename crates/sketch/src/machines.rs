//! One-primitive-per-step machine forms of every sketch operation — the
//! single transcriptions both the blocking handle methods and the
//! [`OpTask`](smr::OpTask) wrappers ([`tasks`](crate::tasks)) drive, so
//! all submission forms apply byte-identical primitive sequences.
//!
//! Each machine composes the core machines ([`FlushMachine`],
//! [`ReadMachine`], [`KmultMaxWriteMachine`], [`KmultMaxReadMachine`])
//! under the poll contract of [`smr::task`]: a fresh sub-machine's first
//! step is its free priming step, so whenever a sub-machine completes,
//! the composite immediately primes its successor *within the same
//! step* — every granted step still applies exactly one primitive, and
//! the composite's own priming step applies none. Operations that turn
//! out to be pure bookkeeping (an add below the flush threshold, a rank
//! query covering no bucket) complete on the priming step with zero
//! primitives, exactly like zero-step closures.

use crate::quantile::QuantileHandle;
use crate::topk::{TopKHandle, TopKResult};
use approx_objects::{FlushMachine, KmultMaxReadMachine, KmultMaxWriteMachine, ReadMachine};
use smr::{Poll, ProcCtx};
use std::sync::OnceLock;

/// Shared metric handles, resolved once per process. Completed flush
/// drains (both sketches) and shards skipped by the top-k pruning
/// bound are the two quantities that tell whether batching and
/// pruning are actually earning their complexity on a given workload.
struct SketchMetrics {
    flushes: &'static obs::Counter,
    pruned_scans: &'static obs::Counter,
}

fn metrics() -> &'static SketchMetrics {
    static METRICS: OnceLock<SketchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SketchMetrics {
        flushes: obs::counter(obs::names::SUB_SKETCH, obs::names::SKETCH_FLUSHES),
        pruned_scans: obs::counter(obs::names::SUB_SKETCH, obs::names::SKETCH_PRUNED_SCANS),
    })
}

/// Resume point of a [`TopKHandle::flush`]: for every key with buffered
/// units (ascending), batch the deferred increments into the key's
/// counter, read the counter back, and publish the reading to the key's
/// shard maximum.
#[derive(Default)]
pub struct TopKFlushMachine {
    phase: FlushPhase,
}

#[derive(Default)]
enum FlushPhase {
    /// Looking for the next dirty key at or after `from`.
    #[default]
    Seek,
    SeekFrom(usize),
    /// Draining `key`'s deferred units into its counter.
    Inc {
        key: usize,
        m: FlushMachine,
    },
    /// Reading `key`'s counter back.
    Read {
        key: usize,
        m: Box<ReadMachine>,
    },
    /// Publishing the reading to `key`'s shard maximum.
    Publish {
        key: usize,
        m: KmultMaxWriteMachine,
    },
    /// All dirty keys flushed.
    Done,
}

impl TopKFlushMachine {
    /// A machine flushing every key with buffered units.
    pub fn new() -> Self {
        TopKFlushMachine::default()
    }

    /// Advance the flush by at most one primitive.
    pub fn step(&mut self, h: &mut TopKHandle, ctx: &ProcCtx) -> Poll<()> {
        loop {
            match std::mem::take(&mut self.phase) {
                FlushPhase::Seek => self.phase = FlushPhase::SeekFrom(0),
                FlushPhase::SeekFrom(from) => match h.next_buffered_key(from) {
                    None => {
                        // Final seek: exactly once per flush run.
                        metrics().flushes.inc();
                        self.phase = FlushPhase::Done;
                        return Poll::Ready(());
                    }
                    Some(key) => {
                        // The drained units stop counting against the
                        // flush threshold now; the drain machine takes
                        // them from the core handle on its priming step
                        // (within this same composite step).
                        h.buffered_total -= h.counter_mut(key).deferred();
                        // Mark the key's slot hot *before* the first
                        // increment lands: readers that skip a clear
                        // slot then provably missed every increment of
                        // this flush too (see `ShardDir`).
                        let cfg = *h.sketch.config();
                        let shard = h.sketch.shard_of(key);
                        h.sketch.dir(shard).mark(key / cfg.shards);
                        self.phase = FlushPhase::Inc {
                            key,
                            m: FlushMachine::drain(),
                        };
                    }
                },
                FlushPhase::Inc { key, mut m } => match m.step(h.counter_mut(key), ctx) {
                    Poll::Pending => {
                        self.phase = FlushPhase::Inc { key, m };
                        return Poll::Pending;
                    }
                    Poll::Ready(()) => {
                        self.phase = FlushPhase::Read {
                            key,
                            m: Box::new(ReadMachine::new()),
                        };
                    }
                },
                FlushPhase::Read { key, mut m } => match m.step(h.counter_mut(key), ctx) {
                    Poll::Pending => {
                        self.phase = FlushPhase::Read { key, m };
                        return Poll::Pending;
                    }
                    Poll::Ready(out) => {
                        let bound = h.sketch.config().max_bound;
                        assert!(
                            out.value < u128::from(bound),
                            "counter reading {} exceeds the shard max-register bound \
                             {bound}; raise TopKConfig::max_bound",
                            out.value
                        );
                        let shard = h.sketch.shard_of(key);
                        let m =
                            KmultMaxWriteMachine::new(h.sketch.shard_max(shard), out.value as u64);
                        self.phase = FlushPhase::Publish { key, m };
                    }
                },
                FlushPhase::Publish { key, mut m } => {
                    let shard = h.sketch.shard_of(key);
                    match m.step(h.sketch.shard_max(shard), ctx) {
                        Poll::Pending => {
                            self.phase = FlushPhase::Publish { key, m };
                            return Poll::Pending;
                        }
                        Poll::Ready(()) => self.phase = FlushPhase::SeekFrom(key + 1),
                    }
                }
                FlushPhase::Done => return Poll::Ready(()),
            }
        }
    }
}

/// Resume point of a [`TopKHandle::add`]: buffer the units on the
/// priming step (zero primitives) and, if the buffer reached the flush
/// threshold, run a full [`TopKFlushMachine`].
pub struct TopKAddMachine {
    key: usize,
    amount: u64,
    state: AddState,
}

enum AddState {
    Start,
    Flushing(TopKFlushMachine),
    Done,
}

impl TopKAddMachine {
    /// A machine adding `amount` units to `key`.
    pub fn new(key: usize, amount: u64) -> Self {
        TopKAddMachine {
            key,
            amount,
            state: AddState::Start,
        }
    }

    /// Advance the add by at most one primitive.
    pub fn step(&mut self, h: &mut TopKHandle, ctx: &ProcCtx) -> Poll<()> {
        if let AddState::Start = self.state {
            h.defer_add(self.key, self.amount);
            if h.buffered() < h.flush_every() {
                self.state = AddState::Done;
                return Poll::Ready(());
            }
            // Threshold reached: the flush machine's priming runs within
            // this (priming) step and applies no primitive.
            self.state = AddState::Flushing(TopKFlushMachine::new());
        }
        match &mut self.state {
            AddState::Flushing(m) => match m.step(h, ctx) {
                Poll::Pending => Poll::Pending,
                Poll::Ready(()) => {
                    self.state = AddState::Done;
                    Poll::Ready(())
                }
            },
            AddState::Done => Poll::Ready(()),
            AddState::Start => unreachable!("handled above"),
        }
    }
}

/// Resume point of a [`TopKHandle::top_k`]: read the shard maxima, then
/// scan shards in descending-maximum order, pruning once the next
/// shard's maximum cannot beat the current `q`-th candidate (see the
/// [`topk`](crate::topk) module docs).
pub struct TopKReadMachine {
    q: usize,
    /// Shard maxima, indexed by shard, filled during the max scan.
    maxima: Vec<u128>,
    /// Shard visit order (descending maximum, ties by ascending shard),
    /// built once the max scan completes.
    order: Vec<usize>,
    /// Position in `order` and key slot within the current shard
    /// (`key = shard + slot·S`).
    pos: usize,
    slot: usize,
    /// Current candidates: descending count, ties by ascending key.
    candidates: Vec<(u128, u64)>,
    phase: ReadPhase,
}

enum ReadPhase {
    Start,
    MaxRead {
        shard: usize,
        m: KmultMaxReadMachine,
    },
    KeyRead {
        key: usize,
        m: Box<ReadMachine>,
    },
    Done,
}

impl TopKReadMachine {
    /// A machine answering a top-`q` query.
    ///
    /// # Panics
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        TopKReadMachine {
            q,
            maxima: Vec::new(),
            order: Vec::new(),
            pos: 0,
            slot: 0,
            candidates: Vec::new(),
            phase: ReadPhase::Start,
        }
    }

    fn insert_candidate(&mut self, key: usize, count: u128) {
        if count == 0 {
            return;
        }
        self.candidates.push((count, key as u64));
        self.candidates
            .sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        self.candidates.truncate(self.q);
    }

    /// The next phase once the current shard position is resolved:
    /// either a key read, or `Done` when the scan is exhausted or
    /// pruned. Within a shard the scan jumps between hot slots via the
    /// shard's [`ShardDir`](crate::topk::ShardDir) — never-flushed keys
    /// cost zero primitives.
    fn advance_scan(&mut self, h: &TopKHandle) -> ReadPhase {
        let cfg = *h.sketch().config();
        loop {
            if self.pos == self.order.len() {
                return ReadPhase::Done;
            }
            let shard = self.order[self.pos];
            if self.slot == 0 && self.candidates.len() == self.q {
                let kth = self.candidates[self.q - 1].0;
                // Maxima are visited in descending order: if this
                // shard's maximum cannot beat the q-th candidate, no
                // later shard can either.
                if self.maxima[shard] < kth {
                    // Every shard from here on is skipped unread.
                    metrics()
                        .pruned_scans
                        .add((self.order.len() - self.pos) as u64);
                    return ReadPhase::Done;
                }
            }
            match h.sketch().dir(shard).next_hot_slot(self.slot) {
                None => {
                    self.pos += 1;
                    self.slot = 0;
                }
                Some(slot) => {
                    let key = shard + slot * cfg.shards;
                    self.slot = slot + 1;
                    return ReadPhase::KeyRead {
                        key,
                        m: Box::new(ReadMachine::new()),
                    };
                }
            }
        }
    }

    fn result(&mut self) -> TopKResult {
        TopKResult {
            q: self.q,
            entries: std::mem::take(&mut self.candidates)
                .into_iter()
                .map(|(count, key)| (key, count))
                .collect(),
        }
    }

    /// Advance the read by at most one primitive.
    pub fn step(&mut self, h: &mut TopKHandle, ctx: &ProcCtx) -> Poll<TopKResult> {
        loop {
            match std::mem::replace(&mut self.phase, ReadPhase::Done) {
                ReadPhase::Start => {
                    let m = KmultMaxReadMachine::new(h.sketch().shard_max(0));
                    self.phase = ReadPhase::MaxRead { shard: 0, m };
                }
                ReadPhase::MaxRead { shard, mut m } => {
                    match m.step(h.sketch.shard_max(shard), ctx) {
                        Poll::Pending => {
                            self.phase = ReadPhase::MaxRead { shard, m };
                            return Poll::Pending;
                        }
                        Poll::Ready(v) => {
                            self.maxima.push(v);
                            if shard + 1 < h.sketch.config().shards {
                                let m = KmultMaxReadMachine::new(h.sketch.shard_max(shard + 1));
                                self.phase = ReadPhase::MaxRead {
                                    shard: shard + 1,
                                    m,
                                };
                            } else {
                                let mut order: Vec<usize> = (0..self.maxima.len()).collect();
                                let maxima = &self.maxima;
                                order.sort_by(|&a, &b| maxima[b].cmp(&maxima[a]).then(a.cmp(&b)));
                                self.order = order;
                                self.phase = self.advance_scan(h);
                            }
                        }
                    }
                }
                ReadPhase::KeyRead { key, mut m } => match m.step(h.counter_mut(key), ctx) {
                    Poll::Pending => {
                        self.phase = ReadPhase::KeyRead { key, m };
                        return Poll::Pending;
                    }
                    Poll::Ready(out) => {
                        self.insert_candidate(key, out.value);
                        self.phase = self.advance_scan(h);
                    }
                },
                ReadPhase::Done => return Poll::Ready(self.result()),
            }
        }
    }
}

/// Resume point of a [`QuantileHandle::flush`]: drain every dirty
/// bucket's deferred units (ascending bucket order) — no max registers
/// on the quantile write path.
#[derive(Default)]
pub struct QuantileFlushMachine {
    phase: QFlushPhase,
}

#[derive(Default)]
enum QFlushPhase {
    #[default]
    Seek,
    SeekFrom(usize),
    Inc {
        bucket: usize,
        m: FlushMachine,
    },
    Done,
}

impl QuantileFlushMachine {
    /// A machine flushing every dirty bucket.
    pub fn new() -> Self {
        QuantileFlushMachine::default()
    }

    /// Advance the flush by at most one primitive.
    pub fn step(&mut self, h: &mut QuantileHandle, ctx: &ProcCtx) -> Poll<()> {
        loop {
            match std::mem::take(&mut self.phase) {
                QFlushPhase::Seek => self.phase = QFlushPhase::SeekFrom(0),
                QFlushPhase::SeekFrom(from) => match h.next_buffered_bucket(from) {
                    None => {
                        // Final seek: exactly once per flush run.
                        metrics().flushes.inc();
                        self.phase = QFlushPhase::Done;
                        return Poll::Ready(());
                    }
                    Some(bucket) => {
                        h.buffered_total -= h.bucket_mut(bucket).deferred();
                        self.phase = QFlushPhase::Inc {
                            bucket,
                            m: FlushMachine::drain(),
                        };
                    }
                },
                QFlushPhase::Inc { bucket, mut m } => match m.step(h.bucket_mut(bucket), ctx) {
                    Poll::Pending => {
                        self.phase = QFlushPhase::Inc { bucket, m };
                        return Poll::Pending;
                    }
                    Poll::Ready(()) => self.phase = QFlushPhase::SeekFrom(bucket + 1),
                },
                QFlushPhase::Done => return Poll::Ready(()),
            }
        }
    }
}

/// Resume point of a [`QuantileHandle::observe`]: buffer on the priming
/// step, flush when the threshold is reached.
pub struct QuantileObserveMachine {
    value: u64,
    amount: u64,
    state: ObserveState,
}

enum ObserveState {
    Start,
    Flushing(QuantileFlushMachine),
    Done,
}

impl QuantileObserveMachine {
    /// A machine recording `amount` observations of `value`.
    pub fn new(value: u64, amount: u64) -> Self {
        QuantileObserveMachine {
            value,
            amount,
            state: ObserveState::Start,
        }
    }

    /// Advance the observation by at most one primitive.
    pub fn step(&mut self, h: &mut QuantileHandle, ctx: &ProcCtx) -> Poll<()> {
        if let ObserveState::Start = self.state {
            h.defer_observe(self.value, self.amount);
            if h.buffered() < h.flush_every() {
                self.state = ObserveState::Done;
                return Poll::Ready(());
            }
            self.state = ObserveState::Flushing(QuantileFlushMachine::new());
        }
        match &mut self.state {
            ObserveState::Flushing(m) => match m.step(h, ctx) {
                Poll::Pending => Poll::Pending,
                Poll::Ready(()) => {
                    self.state = ObserveState::Done;
                    Poll::Ready(())
                }
            },
            ObserveState::Done => Poll::Ready(()),
            ObserveState::Start => unreachable!("handled above"),
        }
    }
}

/// Resume point of a [`QuantileHandle::quantile`]: read every bucket
/// (ascending), then resolve the target rank locally on the completing
/// step.
pub struct QuantileValueMachine {
    num: u32,
    den: u32,
    readings: Vec<u128>,
    phase: BucketScanPhase,
}

enum BucketScanPhase {
    Start,
    Read { bucket: usize, m: Box<ReadMachine> },
    Done,
}

impl QuantileValueMachine {
    /// A machine answering `quantile(num/den)`.
    ///
    /// # Panics
    /// Panics unless `0 < num ≤ den`.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(
            num > 0 && num <= den,
            "rank ratio must satisfy 0 < num ≤ den"
        );
        QuantileValueMachine {
            num,
            den,
            readings: Vec::new(),
            phase: BucketScanPhase::Start,
        }
    }

    fn resolve(&self, h: &QuantileHandle) -> u128 {
        let total: u128 = self.readings.iter().sum();
        if total == 0 {
            return 0;
        }
        // Target rank ⌈(num/den)·total⌉ against the approximate total.
        let target = (u128::from(self.num) * total).div_ceil(u128::from(self.den));
        let mut cum = 0u128;
        for (i, &b) in self.readings.iter().enumerate() {
            cum += b;
            if cum >= target {
                return h.sketch().bucket_hi(i);
            }
        }
        unreachable!("cum reaches total ≥ target on the last bucket")
    }

    /// Advance the read by at most one primitive.
    pub fn step(&mut self, h: &mut QuantileHandle, ctx: &ProcCtx) -> Poll<u128> {
        loop {
            match std::mem::replace(&mut self.phase, BucketScanPhase::Done) {
                BucketScanPhase::Start => {
                    self.phase = BucketScanPhase::Read {
                        bucket: 0,
                        m: Box::new(ReadMachine::new()),
                    };
                }
                BucketScanPhase::Read { bucket, mut m } => {
                    match m.step(h.bucket_mut(bucket), ctx) {
                        Poll::Pending => {
                            self.phase = BucketScanPhase::Read { bucket, m };
                            return Poll::Pending;
                        }
                        Poll::Ready(out) => {
                            self.readings.push(out.value);
                            if bucket + 1 < h.sketch().num_buckets() {
                                self.phase = BucketScanPhase::Read {
                                    bucket: bucket + 1,
                                    m: Box::new(ReadMachine::new()),
                                };
                            } else {
                                return Poll::Ready(self.resolve(h));
                            }
                        }
                    }
                }
                BucketScanPhase::Done => {
                    unreachable!("quantile machine stepped after completion")
                }
            }
        }
    }
}

/// Resume point of a [`QuantileHandle::rank`]: read the buckets lying
/// entirely at or below the queried value and sum them. A query below
/// the first bucket edge covers nothing and completes on the priming
/// step with zero primitives.
pub struct RankMachine {
    /// Buckets `0..prefix` are covered by the query.
    prefix: usize,
    sum: u128,
    phase: BucketScanPhase,
}

impl RankMachine {
    /// A machine answering `rank(v)` against `sketch`'s geometry.
    pub fn new(sketch: &crate::quantile::QuantileSketch, v: u64) -> Self {
        let prefix = (0..sketch.num_buckets())
            .take_while(|&i| sketch.bucket_hi(i) <= u128::from(v) + 1)
            .count();
        RankMachine {
            prefix,
            sum: 0,
            phase: BucketScanPhase::Start,
        }
    }

    /// Advance the read by at most one primitive.
    pub fn step(&mut self, h: &mut QuantileHandle, ctx: &ProcCtx) -> Poll<u128> {
        loop {
            match std::mem::replace(&mut self.phase, BucketScanPhase::Done) {
                BucketScanPhase::Start => {
                    if self.prefix == 0 {
                        return Poll::Ready(0); // zero primitives
                    }
                    self.phase = BucketScanPhase::Read {
                        bucket: 0,
                        m: Box::new(ReadMachine::new()),
                    };
                }
                BucketScanPhase::Read { bucket, mut m } => {
                    match m.step(h.bucket_mut(bucket), ctx) {
                        Poll::Pending => {
                            self.phase = BucketScanPhase::Read { bucket, m };
                            return Poll::Pending;
                        }
                        Poll::Ready(out) => {
                            self.sum += out.value;
                            if bucket + 1 < self.prefix {
                                self.phase = BucketScanPhase::Read {
                                    bucket: bucket + 1,
                                    m: Box::new(ReadMachine::new()),
                                };
                            } else {
                                return Poll::Ready(self.sum);
                            }
                        }
                    }
                }
                BucketScanPhase::Done => {
                    unreachable!("rank machine stepped after completion")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::{TopKConfig, TopKSketch};
    use smr::Runtime;

    #[test]
    fn add_below_threshold_completes_on_priming_with_zero_primitives() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 4,
            shards: 2,
            ..TopKConfig::default()
        });
        let mut h = sk.handle(0, 100);
        let mut m = TopKAddMachine::new(1, 5);
        assert!(m.step(&mut h, &ctx).is_ready());
        assert_eq!(ctx.steps_taken(), 0);
        assert_eq!(h.buffered(), 5);
    }

    #[test]
    fn composite_machines_apply_exactly_one_primitive_per_granted_step() {
        // The poll contract, asserted directly: priming step free, every
        // later step exactly one primitive — for the flush, read and
        // quantile composites.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 8,
            shards: 4,
            ..TopKConfig::default()
        });
        let mut h = sk.handle(0, 1);
        for key in [0usize, 3, 5] {
            for _ in 0..10 {
                h.add(&ctx, key, 1);
            }
        }
        // A flush with buffered units across several keys.
        let mut w = sk.handle(0, 1_000_000);
        for key in 0..8 {
            w.add(&ctx, key, 7);
        }
        let mut m = TopKFlushMachine::new();
        let before = ctx.steps_taken();
        let first = m.step(&mut w, &ctx);
        assert_eq!(ctx.steps_taken(), before, "priming step applies nothing");
        assert!(first.is_pending(), "a dirty flush has primitives to apply");
        loop {
            let s0 = ctx.steps_taken();
            let polled = m.step(&mut w, &ctx);
            assert_eq!(ctx.steps_taken(), s0 + 1, "exactly one primitive");
            if polled.is_ready() {
                break;
            }
        }
        // A top-k read.
        let mut m = TopKReadMachine::new(2);
        let before = ctx.steps_taken();
        assert!(m.step(&mut h, &ctx).is_pending());
        assert_eq!(ctx.steps_taken(), before, "priming step applies nothing");
        loop {
            let s0 = ctx.steps_taken();
            let polled = m.step(&mut h, &ctx);
            assert_eq!(ctx.steps_taken(), s0 + 1, "exactly one primitive");
            if let Poll::Ready(out) = polled {
                assert_eq!(out.entries.len(), 2);
                break;
            }
        }
    }

    #[test]
    fn empty_flush_completes_on_priming() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let sk = TopKSketch::new(TopKConfig {
            n: 1,
            keys: 4,
            shards: 2,
            ..TopKConfig::default()
        });
        let mut h = sk.handle(0, 10);
        let mut m = TopKFlushMachine::new();
        assert!(m.step(&mut h, &ctx).is_ready());
        assert_eq!(ctx.steps_taken(), 0);
    }

    #[test]
    fn blocking_and_machine_forms_take_identical_steps() {
        // Drive one handle through blocking calls and a twin through
        // manual machine stepping: values and per-pid primitive counts
        // must match exactly (single transcription).
        let run_blocking = |keys: usize| -> (u128, u64) {
            let rt = Runtime::free_running(1);
            let ctx = rt.ctx(0);
            let sk = TopKSketch::new(TopKConfig {
                n: 1,
                keys,
                shards: 2,
                ..TopKConfig::default()
            });
            let mut h = sk.handle(0, 3);
            for i in 0..20usize {
                h.add(&ctx, i % keys, 1 + (i as u64 % 2));
            }
            h.flush(&ctx);
            let top = h.top_k(&ctx, 3);
            (top.kth(), rt.steps_of(0))
        };
        let run_machines = |keys: usize| -> (u128, u64) {
            let rt = Runtime::free_running(1);
            let ctx = rt.ctx(0);
            let sk = TopKSketch::new(TopKConfig {
                n: 1,
                keys,
                shards: 2,
                ..TopKConfig::default()
            });
            let mut h = sk.handle(0, 3);
            for i in 0..20usize {
                let mut m = TopKAddMachine::new(i % keys, 1 + (i as u64 % 2));
                while m.step(&mut h, &ctx).is_pending() {}
            }
            let mut m = TopKFlushMachine::new();
            while m.step(&mut h, &ctx).is_pending() {}
            let mut m = TopKReadMachine::new(3);
            let top = loop {
                if let Poll::Ready(out) = m.step(&mut h, &ctx) {
                    break out;
                }
            };
            (top.kth(), rt.steps_of(0))
        };
        for keys in [4usize, 7] {
            assert_eq!(run_blocking(keys), run_machines(keys), "keys = {keys}");
        }
    }
}
