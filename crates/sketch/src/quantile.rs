//! The multiplicative-bucket quantile histogram.
//!
//! Bucket `i` covers values `[b^i, b^(i+1))`; its population is a
//! [`KmultCounter`] (accuracy `k`). A [`quantile`](QuantileHandle::quantile)
//! read sums the bucket populations (one counter read per bucket,
//! ascending), computes the target rank `⌈φ·total⌉` from the *approximate*
//! total, and returns the upper edge `b^(j+1)` of the first bucket whose
//! cumulative population reaches it. A [`rank`](QuantileHandle::rank)
//! read sums the populations of the buckets lying entirely at or below
//! the queried value.
//!
//! Both answers carry **(k·b)-multiplicative rank error** composed from
//! the per-counter bounds: the count side contributes the counters'
//! `x ≤ k·v` / `v ≤ (w+1)·x` envelope (for `w` observers), the value
//! side the bucket width `b` — the precise two-sided statements, sound
//! on every interleaving, are derived in `lincheck::sketchlog` (which
//! checks them against the typed event log) and argued in DESIGN.md.

use crate::machines::{QuantileObserveMachine, QuantileValueMachine, RankMachine};
use approx_objects::accuracy::log_k_floor;
use approx_objects::{KmultCounter, KmultCounterHandle};
use smr::{Poll, ProcCtx};
use std::sync::Arc;

/// Construction parameters of a [`QuantileSketch`].
#[derive(Debug, Clone, Copy)]
pub struct QuantileConfig {
    /// Number of processes sharing the sketch.
    pub n: usize,
    /// Accuracy parameter of the bucket counters.
    pub k: u64,
    /// Bucket base `b ≥ 2` (the value-side accuracy `k'`).
    pub base: u64,
    /// Largest observable value; observations are `1..=max_value`.
    pub max_value: u64,
}

impl Default for QuantileConfig {
    fn default() -> Self {
        QuantileConfig {
            n: 1,
            k: 2,
            base: 2,
            max_value: 1 << 20,
        }
    }
}

/// The shared part of the quantile histogram. Create per-process
/// [`QuantileHandle`]s with [`QuantileSketch::handle`].
pub struct QuantileSketch {
    cfg: QuantileConfig,
    buckets: Vec<Arc<KmultCounter>>,
}

impl QuantileSketch {
    /// A histogram for `cfg.n` processes over `⌊log_b max_value⌋ + 1`
    /// buckets.
    ///
    /// # Panics
    /// Panics on degenerate configurations (`n == 0`, `base < 2`,
    /// `max_value == 0`).
    pub fn new(cfg: QuantileConfig) -> Arc<Self> {
        assert!(cfg.n > 0, "need at least one process");
        assert!(cfg.base >= 2, "bucket base must be at least 2");
        assert!(cfg.max_value >= 1, "need a nonempty value domain");
        let buckets = usize::try_from(log_k_floor(cfg.max_value, cfg.base) + 1)
            .expect("bucket count fits usize");
        Arc::new(QuantileSketch {
            cfg,
            buckets: (0..buckets)
                .map(|_| KmultCounter::new(cfg.n, cfg.k))
                .collect(),
        })
    }

    /// The construction parameters.
    pub fn config(&self) -> &QuantileConfig {
        &self.cfg
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket holding value `v`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ v ≤ max_value`.
    pub fn bucket_of(&self, v: u64) -> usize {
        assert!(
            v >= 1 && v <= self.cfg.max_value,
            "value {v} outside 1..={}",
            self.cfg.max_value
        );
        log_k_floor(v, self.cfg.base) as usize
    }

    /// The exclusive upper edge `b^(i+1)` of bucket `i`.
    pub fn bucket_hi(&self, i: usize) -> u128 {
        u128::from(self.cfg.base).pow(u32::try_from(i + 1).expect("bucket index fits u32"))
    }

    /// The counter of bucket `i` (for shadow checks and tests).
    pub fn bucket(&self, i: usize) -> &Arc<KmultCounter> {
        &self.buckets[i]
    }

    /// A handle for process `pid` that flushes once `flush_every` units
    /// are buffered (`1` disables batching).
    ///
    /// # Panics
    /// Panics if `pid` is out of range or `flush_every == 0`.
    pub fn handle(self: &Arc<Self>, pid: usize, flush_every: u64) -> QuantileHandle {
        assert!(pid < self.cfg.n, "pid {pid} out of range");
        assert!(flush_every >= 1, "flush threshold must be at least 1");
        QuantileHandle {
            sketch: self.clone(),
            pid,
            flush_every,
            handles: (0..self.buckets.len()).map(|_| None).collect(),
            buffered_total: 0,
        }
    }
}

/// Per-process side of the histogram: one lazily-created
/// [`KmultCounterHandle`] per bucket plus the batched-write buffer.
pub struct QuantileHandle {
    pub(crate) sketch: Arc<QuantileSketch>,
    pub(crate) pid: usize,
    pub(crate) flush_every: u64,
    pub(crate) handles: Vec<Option<KmultCounterHandle>>,
    pub(crate) buffered_total: u64,
}

impl QuantileHandle {
    /// The sketch this handle operates on.
    pub fn sketch(&self) -> &Arc<QuantileSketch> {
        &self.sketch
    }

    /// Units buffered locally and not yet flushed (invisible to reads).
    pub fn buffered(&self) -> u64 {
        self.buffered_total
    }

    /// The flush threshold.
    pub fn flush_every(&self) -> u64 {
        self.flush_every
    }

    /// The per-bucket core handle, created on first touch.
    pub(crate) fn bucket_mut(&mut self, i: usize) -> &mut KmultCounterHandle {
        let pid = self.pid;
        let sketch = &self.sketch;
        self.handles[i].get_or_insert_with(|| sketch.buckets[i].handle(pid))
    }

    /// Buffer `amount` observations of value `v` (zero primitives).
    pub(crate) fn defer_observe(&mut self, v: u64, amount: u64) {
        assert!(amount > 0, "an observation needs at least one unit");
        let bucket = self.sketch.bucket_of(v);
        self.bucket_mut(bucket).defer(amount);
        self.buffered_total = self
            .buffered_total
            .checked_add(amount)
            .expect("buffered total overflow");
    }

    /// Smallest bucket at or after `from` with buffered units, if any.
    pub(crate) fn next_buffered_bucket(&self, from: usize) -> Option<usize> {
        (from..self.handles.len())
            .find(|&i| self.handles[i].as_ref().is_some_and(|h| h.deferred() > 0))
    }

    /// Record `amount` observations of value `v`, flushing if the
    /// buffer reaches the threshold. Drives [`QuantileObserveMachine`].
    pub fn observe(&mut self, ctx: &ProcCtx, v: u64, amount: u64) {
        let mut m = QuantileObserveMachine::new(v, amount);
        while m.step(self, ctx).is_pending() {}
    }

    /// Flush every buffered observation (ascending bucket order).
    pub fn flush(&mut self, ctx: &ProcCtx) {
        let mut m = crate::machines::QuantileFlushMachine::new();
        while m.step(self, ctx).is_pending() {}
    }

    /// The value at rank `⌈(num/den)·total⌉`: the upper edge of the
    /// first bucket whose cumulative approximate population reaches the
    /// target, or 0 when the sketch looks empty. Drives
    /// [`QuantileValueMachine`].
    ///
    /// # Panics
    /// Panics unless `0 < num ≤ den`.
    pub fn quantile(&mut self, ctx: &ProcCtx, num: u32, den: u32) -> u128 {
        let mut m = QuantileValueMachine::new(num, den);
        loop {
            if let Poll::Ready(v) = m.step(self, ctx) {
                return v;
            }
        }
    }

    /// The approximate number of observations in buckets lying entirely
    /// at or below `v`. Drives [`RankMachine`].
    pub fn rank(&mut self, ctx: &ProcCtx, v: u64) -> u128 {
        let mut m = RankMachine::new(self.sketch(), v);
        loop {
            if let Poll::Ready(r) = m.step(self, ctx) {
                return r;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::Runtime;

    fn sketch1(k: u64, base: u64, max: u64) -> Arc<QuantileSketch> {
        QuantileSketch::new(QuantileConfig {
            n: 1,
            k,
            base,
            max_value: max,
        })
    }

    #[test]
    fn bucket_geometry() {
        let s = sketch1(2, 2, 1 << 10);
        assert_eq!(s.num_buckets(), 11);
        assert_eq!(s.bucket_of(1), 0);
        assert_eq!(s.bucket_of(2), 1);
        assert_eq!(s.bucket_of(3), 1);
        assert_eq!(s.bucket_of(4), 2);
        assert_eq!(s.bucket_hi(0), 2);
        assert_eq!(s.bucket_hi(2), 8);
        let s3 = sketch1(2, 3, 100);
        assert_eq!(s3.num_buckets(), 5, "3^4 = 81 ≤ 100 < 243");
        assert_eq!(s3.bucket_of(81), 4);
    }

    #[test]
    fn empty_sketch_answers_zero() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let s = sketch1(2, 2, 256);
        let mut h = s.handle(0, 1);
        assert_eq!(h.quantile(&ctx, 1, 2), 0);
        assert_eq!(h.rank(&ctx, 100), 0);
    }

    #[test]
    fn sequential_quantiles_land_in_the_envelope() {
        // 90 observations of 3 and 10 of 200: the median must come from
        // bucket [2,4), p99 from the high bucket.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let s = sketch1(2, 2, 1 << 10);
        let mut h = s.handle(0, 1);
        h.observe(&ctx, 3, 90);
        h.observe(&ctx, 200, 10);
        let median = h.quantile(&ctx, 1, 2);
        assert_eq!(median, 4, "upper edge of [2, 4)");
        let p99 = h.quantile(&ctx, 99, 100);
        assert_eq!(p99, 256, "upper edge of [128, 256)");
    }

    #[test]
    fn rank_counts_whole_buckets() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let s = sketch1(2, 2, 256);
        let mut h = s.handle(0, 1);
        h.observe(&ctx, 3, 8); // bucket [2,4)
        h.observe(&ctx, 100, 4); // bucket [64,128)
                                 // rank(7) covers buckets with upper edge ≤ 8: the 8 units at 3.
        let r = h.rank(&ctx, 7);
        assert!((4..=16).contains(&r), "k=2 envelope around 8, got {r}");
        // rank(0) covers nothing.
        assert_eq!(h.rank(&ctx, 0), 0);
        // rank(max) covers everything.
        let all = h.rank(&ctx, 256);
        assert!((6..=24).contains(&all), "k=2 envelope around 12, got {all}");
    }

    #[test]
    fn batched_observes_defer_until_flush() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let s = sketch1(2, 2, 64);
        let mut h = s.handle(0, 100);
        h.observe(&ctx, 5, 7);
        assert_eq!(h.buffered(), 7);
        assert_eq!(ctx.steps_taken(), 0);
        assert_eq!(h.quantile(&ctx, 1, 2), 0, "buffered units invisible");
        h.flush(&ctx);
        assert_eq!(h.buffered(), 0);
        assert_eq!(h.quantile(&ctx, 1, 2), 8, "upper edge of [4, 8)");
    }

    #[test]
    fn quantiles_are_monotone_in_phi() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let s = sketch1(2, 2, 1 << 12);
        let mut h = s.handle(0, 1);
        for (v, n) in [(2u64, 50u64), (30, 30), (500, 15), (4000, 5)] {
            h.observe(&ctx, v, n);
        }
        let mut prev = 0;
        for num in 1..=10 {
            let x = h.quantile(&ctx, num, 10);
            assert!(x >= prev, "quantile regressed at {num}/10");
            prev = x;
        }
    }
}
