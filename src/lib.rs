//! # deterministic-approximate-objects
//!
//! A full reproduction of *"Upper and Lower Bounds for Deterministic
//! Approximate Objects"* (Hendler, Khattabi, Milani, Travers — ICDCS
//! 2021) as a Rust workspace. This umbrella crate re-exports the member
//! crates and hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`).
//!
//! ## The pieces
//!
//! * [`approx_objects`] — the paper's contribution: the
//!   k-multiplicative-accurate counter (Algorithm 1, constant amortized
//!   steps for `k ≥ √n`), bounded max register (Algorithm 2,
//!   `O(min(log₂ log_k m, n))` worst case) and the unbounded max-register
//!   extension.
//! * [`smr`] — the instrumented shared-memory runtime: step-counted base
//!   objects, deterministic gate scheduling, operation histories, traces.
//! * [`maxreg`] / [`counter`] — the exact substrates and baselines
//!   (AACH tree max register, collect objects, atomic snapshot, …).
//! * [`lincheck`] — linearizability checking against exact and
//!   k-multiplicative specifications, plus the composed rank-error
//!   envelopes of the sketch workloads.
//! * [`sketch`] — approximate-aggregation workloads over the paper's
//!   primitives: the sharded top-k / heavy-hitters sketch and the
//!   multiplicative-bucket quantile histogram, with batched write
//!   handles.
//! * [`perturb`] — the lower-bound machinery: awareness sets and
//!   perturbing executions.
//! * [`obs`] — the self-observability layer: lock-free counters/gauges
//!   and k-multiplicative histograms every subsystem reports into, with
//!   step-scaled snapshot reporting (`exp_obs` pins the overhead).
//!
//! ## Where to start
//!
//! ```bash
//! cargo run --example quickstart
//! cargo run --release -p bench --bin exp_t39   # the headline theorem
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for paper-vs-measured results.

pub use approx_objects;
pub use counter;
pub use lincheck;
pub use maxreg;
pub use obs;
pub use perturb;
pub use sketch;
pub use smr;
