//! Offline stand-in for `parking_lot` backed by `std::sync`.
//!
//! Matches the parking_lot API shape this workspace uses: `lock()`
//! returns the guard directly (no `Result`), `Condvar::wait` takes
//! `&mut MutexGuard`, and lock poisoning is ignored (parking_lot has no
//! poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(inner) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard wrapper holding the std guard in an `Option` so `Condvar::wait`
/// can temporarily take ownership (std's `wait` consumes the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
