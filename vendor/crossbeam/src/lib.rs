//! Offline stand-in for `crossbeam`, covering the `channel` module
//! surface this workspace uses (`unbounded`, `Sender`, `Receiver`),
//! backed by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    pub use mpsc::{RecvError, SendError, TryRecvError};

    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Unbounded MPSC channel (the crossbeam version is MPMC; nothing in
    /// this workspace shares a `Receiver` across threads).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = super::unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert!(rx.try_recv().is_err());
        }
    }
}
