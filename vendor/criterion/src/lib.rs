//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's two benches use:
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::{iter, iter_custom}`, `BenchmarkId`, `Throughput`, the
//! `criterion_group!`/`criterion_main!` macros, and `black_box`.
//!
//! Measurement model: double the iteration count until a sample takes at
//! least ~20 ms, then report mean ns/iter (and throughput if set) to
//! stdout. No statistical analysis, outlier rejection, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_SAMPLE: Duration = Duration::from_millis(20);
const MAX_ITERS: u64 = 1 << 24;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `f` over an adaptively chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= MAX_ITERS {
                self.measured = Some((elapsed, iters));
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }

    /// `f(iters)` must run `iters` iterations and return the elapsed
    /// time for exactly that work.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let mut iters = 1u64;
        loop {
            let elapsed = f(iters);
            if elapsed >= TARGET_SAMPLE || iters >= MAX_ITERS {
                self.measured = Some((elapsed, iters));
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }
}

fn run_one(full_name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { measured: None };
    f(&mut b);
    match b.measured {
        Some((elapsed, iters)) if iters > 0 => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            let rate = throughput.map(|t| {
                let units = match t {
                    Throughput::Elements(e) => (e as f64, "elem/s"),
                    Throughput::Bytes(by) => (by as f64, "B/s"),
                };
                let per_sec = units.0 * 1e9 / ns;
                format!("  ({per_sec:.0} {})", units.1)
            });
            println!("{full_name}: {ns:.1} ns/iter{}", rate.unwrap_or_default());
        }
        _ => println!("{full_name}: no measurement (closure never called iter)"),
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().name);
        run_one(&full, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().name);
        run_one(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().name, None, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn iter_custom_measures() {
        let mut c = Criterion::default();
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = std::time::Instant::now();
                for i in 0..iters {
                    black_box(i);
                }
                start.elapsed().max(std::time::Duration::from_millis(25))
            })
        });
    }
}
