//! Offline stand-in for `proptest`.
//!
//! Provides the macro/strategy surface this workspace's property tests
//! use: the `proptest!` test wrapper, `prop_assert!`/`prop_assert_eq!`,
//! `ProptestConfig::with_cases`, range and `Just` strategies,
//! `prop_oneof!`, `.prop_map`, and `prop::collection::vec`.
//!
//! Semantics: each test runs `cases` iterations; every case gets its own
//! deterministic seed (derived from the test name and the case index),
//! so a failing case reproduces across runs in isolation.
//!
//! ## Shrinking
//!
//! Unlike real proptest there is no value tree; shrinking works through
//! a **shrink factor** `f ∈ [0, 1]` threaded into sampling
//! ([`Strategy::sample_shrunk`]): ranges scale their sampled offset
//! toward the range start, collections scale their length (and shrink
//! their elements), `prop_oneof!` biases toward its first (by
//! convention simplest) option. `f = 1` reproduces the original case
//! byte-for-byte; `f = 0` is the minimal input of that case's random
//! stream. When a case fails, the runner **binary-searches the failing
//! seed's factor** — the smallest `f` whose re-run (same seed) still
//! fails — and reports that minimal counterexample, its factor and the
//! case seed in the panic message. Re-running with the printed seed and
//! factor reproduces it exactly.

pub mod config {
    /// Subset of proptest's runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod test_runner {
    pub use super::config::ProptestConfig as Config;
    use rand::{rngs::StdRng, RngCore, SeedableRng};

    /// Deterministic RNG handed to strategies.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// The stable per-test base seed: an FNV-1a hash of the test
        /// name, so each test gets a distinct stream.
        pub fn base_seed(test_name: &str) -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }

        /// The seed of one case: base seed mixed with the case index,
        /// so each case reproduces independently of the ones before it.
        /// This is the seed a failure report prints.
        pub fn case_seed(test_name: &str, case: u64) -> u64 {
            Self::base_seed(test_name) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        }

        /// The RNG for one case (see [`case_seed`](Self::case_seed)).
        pub fn for_case(test_name: &str, case: u64) -> Self {
            Self::with_seed(Self::case_seed(test_name, case))
        }

        /// An RNG from an explicit seed (what a failure report prints).
        pub fn with_seed(seed: u64) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// Kept for code written against the old stand-in surface.
        pub fn deterministic(test_name: &str) -> Self {
            Self::with_seed(Self::base_seed(test_name))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{RngExt, SampleUniform, StepBack};

    /// A source of sampled values. Unlike real proptest there is no
    /// value tree; shrinking scales sampling itself (see the [crate
    /// docs](crate)).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Sample with shrink factor `factor ∈ [0, 1]`: 1 must equal
        /// [`sample`](Strategy::sample) on the same RNG state, 0 is the
        /// strategy's minimal input for that state. The default ignores
        /// the factor (right for strategies with no size, like `Just`).
        fn sample_shrunk(&self, rng: &mut TestRng, factor: f64) -> Self::Value {
            let _ = factor;
            self.sample(rng)
        }

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }
    }

    impl<T: SampleUniform + StepBack> Strategy for core::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.start..self.end)
        }
        fn sample_shrunk(&self, rng: &mut TestRng, factor: f64) -> T {
            T::shrink_toward(self.start, self.sample(rng), factor)
        }
    }

    impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.random_range(*self.start()..=*self.end())
        }
        fn sample_shrunk(&self, rng: &mut TestRng, factor: f64) -> T {
            T::shrink_toward(*self.start(), self.sample(rng), factor)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
                fn sample_shrunk(&self, rng: &mut TestRng, factor: f64) -> Self::Value {
                    ($(self.$idx.sample_shrunk(rng, factor),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
        fn sample_shrunk(&self, rng: &mut TestRng, factor: f64) -> T {
            (**self).sample_shrunk(rng, factor)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
        fn sample_shrunk(&self, rng: &mut TestRng, factor: f64) -> U {
            (self.f)(self.base.sample_shrunk(rng, factor))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        opts: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        pub fn new(opts: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!opts.is_empty(), "prop_oneof! needs at least one option");
            OneOf { opts }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i: usize = rng.random_range(0..self.opts.len());
            self.opts[i].sample(rng)
        }
        fn sample_shrunk(&self, rng: &mut TestRng, factor: f64) -> T {
            // Bias toward the first option (simplest, by convention).
            let i: usize = rng.random_range(0..self.opts.len());
            let i = usize::shrink_toward(0, i, factor);
            self.opts[i].sample_shrunk(rng, factor)
        }
    }

    /// Helper used by `prop_oneof!` to erase strategy types without a
    /// cast (keeps type inference simple at the macro call site).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

/// The `prop::` namespace (`prop::collection::vec`, …).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::{RngExt, SampleUniform};

        /// Length specifications accepted by [`vec`].
        pub trait IntoSizeRange {
            fn sample_len(&self, rng: &mut TestRng) -> usize;

            /// Length under a shrink factor: scaled toward the minimum
            /// the specification allows.
            fn sample_len_shrunk(&self, rng: &mut TestRng, factor: f64) -> usize {
                let _ = factor;
                self.sample_len(rng)
            }
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.random_range(self.start..self.end)
            }
            fn sample_len_shrunk(&self, rng: &mut TestRng, factor: f64) -> usize {
                usize::shrink_toward(self.start, self.sample_len(rng), factor)
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.random_range(*self.start()..=*self.end())
            }
            fn sample_len_shrunk(&self, rng: &mut TestRng, factor: f64) -> usize {
                usize::shrink_toward(*self.start(), self.sample_len(rng), factor)
            }
        }

        /// Strategy for a `Vec` of values drawn from `element`.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
            fn sample_shrunk(&self, rng: &mut TestRng, factor: f64) -> Vec<S::Value> {
                let n = self.len.sample_len_shrunk(rng, factor);
                (0..n)
                    .map(|_| self.element.sample_shrunk(rng, factor))
                    .collect()
            }
        }

        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Machinery behind the `proptest!` macro's shrinking loop; public so
/// the macro expansion can reach it, not part of the stand-in's API.
#[doc(hidden)]
pub mod runner {
    /// Binary-search the smallest shrink factor whose re-run still
    /// fails. `attempt(factor)` must re-run the case from its fixed
    /// seed; `attempt(1.0)` is known to fail. Panics raised by
    /// `attempt` are caught (and their output suppressed) while the
    /// search runs.
    pub fn shrink_factor(attempt: &mut dyn FnMut(f64) -> Result<(), String>) -> (f64, String) {
        let mut hi = 1.0f64;
        let mut message = attempt(1.0).expect_err("caller guarantees factor 1.0 fails");
        if let Err(msg) = attempt(0.0) {
            return (0.0, msg); // fully shrunk input already fails
        }
        let mut lo = 0.0f64;
        for _ in 0..24 {
            let mid = (lo + hi) / 2.0;
            match attempt(mid) {
                Err(msg) => {
                    hi = mid;
                    message = msg;
                }
                Ok(()) => lo = mid,
            }
        }
        // The search may end on a passing attempt (at `lo`), leaving
        // any caller-side state — the value report the macro builds —
        // describing a non-failing input. Re-run the minimal failing
        // factor so the last attempt is the one being reported.
        if let Err(msg) = attempt(hi) {
            message = msg;
        }
        (hi, message)
    }

    /// Run one case attempt, catching its panic into `Err(message)`.
    pub fn catch(case: impl FnOnce()) -> Result<(), String> {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(case));
        result.map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            }
        })
    }

    /// Suppress the default panic hook's stderr spam for the duration
    /// of `f` (the shrinking search re-runs a failing case dozens of
    /// times). The hook is global, so a concurrent failing test's
    /// backtrace may be swallowed too — accepted: this only runs while
    /// a failure is already being reported.
    pub fn quietly<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }
}

pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property test; failures are caught by the runner and
/// shrunk, so this is `assert!` with the proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` sampled iterations; a failing
/// case is re-run under binary-searched shrink factors and reported as
/// a minimal counterexample (values require `Debug`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::config::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..u64::from(__cfg.cases) {
                    // One attempt at the given shrink factor; factor 1.0
                    // is the plain sampled case.
                    let __attempt = |__factor: f64, __report: &mut String| {
                        let mut __rng =
                            $crate::test_runner::TestRng::for_case(__test_name, __case);
                        __report.clear();
                        $(
                            let __sampled = $crate::strategy::Strategy::sample_shrunk(
                                &($strat),
                                &mut __rng,
                                __factor,
                            );
                            __report.push_str(&format!(
                                "\n  {} = {:?}",
                                stringify!($arg),
                                __sampled,
                            ));
                            let $arg = __sampled;
                        )*
                        $body
                    };
                    let mut __report = String::new();
                    if $crate::runner::catch(|| __attempt(1.0, &mut __report)).is_ok() {
                        continue;
                    }
                    // The case failed: binary-search the smallest still-
                    // failing shrink factor and report that input.
                    let (__factor, __message) = $crate::runner::quietly(|| {
                        $crate::runner::shrink_factor(&mut |__f| {
                            $crate::runner::catch(|| __attempt(__f, &mut __report))
                        })
                    });
                    panic!(
                        "proptest case {} of {} failed; minimal counterexample \
                         (seed {:#x}, shrink factor {:.6}):{}\n{}\nreproduce with \
                         TestRng::with_seed(seed) and sample_shrunk(rng, factor)",
                        __case,
                        __test_name,
                        $crate::test_runner::TestRng::case_seed(__test_name, __case),
                        __factor,
                        __report,
                        __message,
                    );
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 1u64..10, b in 0usize..=3) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 3, "b={b}");
        }

        #[test]
        fn vec_and_oneof(xs in prop::collection::vec(prop_oneof![Just(0u8), Just(1u8)], 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x <= 1));
        }

        #[test]
        fn prop_map_applies(y in (0u64..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // Not a #[test]: invoked below to inspect the failure report.
        fn fails_above_100(v in 0u64..100_000) {
            prop_assert!(v <= 100, "v = {v} exceeds 100");
        }
    }

    #[test]
    fn shrinking_reports_minimal_counterexample() {
        let msg = crate::runner::quietly(|| {
            crate::runner::catch(fails_above_100).expect_err("property must fail")
        });
        assert!(
            msg.contains("minimal counterexample"),
            "report names the shrink: {msg}"
        );
        assert!(
            msg.contains("seed 0x"),
            "report embeds the reproduction seed: {msg}"
        );
        // The shrunk value must still fail (> 100) but be orders of
        // magnitude below the raw sample range; the binary search lands
        // within a factor-of-two of the 101 boundary.
        let v: u64 = msg
            .split("v = ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("report embeds the failing value");
        assert!(v > 100, "still failing: {v}");
        assert!(v <= 220, "shrunk near the boundary, got {v}");
    }

    #[test]
    fn factor_one_reproduces_plain_sampling() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, prop::collection::vec(0u32..7, 2..9));
        let a = strat.sample(&mut TestRng::with_seed(99));
        let b = strat.sample_shrunk(&mut TestRng::with_seed(99), 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn factor_zero_is_minimal() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (5u64..1000, prop::collection::vec(3u32..7, 2..9));
        let (x, v) = strat.sample_shrunk(&mut TestRng::with_seed(4), 0.0);
        assert_eq!(x, 5, "range shrinks to its start");
        assert_eq!(v.len(), 2, "length shrinks to its minimum");
        assert!(v.iter().all(|&e| e == 3), "elements shrink to their start");
    }
}
