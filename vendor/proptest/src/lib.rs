//! Offline stand-in for `proptest`.
//!
//! Provides the macro/strategy surface this workspace's property tests
//! use: the `proptest!` test wrapper, `prop_assert!`/`prop_assert_eq!`,
//! `ProptestConfig::with_cases`, range and `Just` strategies,
//! `prop_oneof!`, `.prop_map`, and `prop::collection::vec`.
//!
//! Semantics: each test runs `cases` iterations with inputs sampled from
//! a deterministic per-test RNG (seeded from the test name), so failures
//! reproduce across runs. There is no shrinking — a failing case panics
//! with the assertion message directly.

pub mod config {
    /// Subset of proptest's runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod test_runner {
    pub use super::config::ProptestConfig as Config;
    use rand::{rngs::StdRng, RngCore, SeedableRng};

    /// Deterministic per-test RNG: seed is an FNV-1a hash of the test
    /// name, so each test gets a stable, distinct stream.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{RngExt, SampleUniform, StepBack};

    /// A source of sampled values. Unlike real proptest there is no
    /// value tree / shrinking; `sample` draws one case.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }
    }

    impl<T: SampleUniform + StepBack> Strategy for core::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.start..self.end)
        }
    }

    impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.random_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        opts: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        pub fn new(opts: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!opts.is_empty(), "prop_oneof! needs at least one option");
            OneOf { opts }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i: usize = rng.random_range(0..self.opts.len());
            self.opts[i].sample(rng)
        }
    }

    /// Helper used by `prop_oneof!` to erase strategy types without a
    /// cast (keeps type inference simple at the macro call site).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

/// The `prop::` namespace (`prop::collection::vec`, …).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::RngExt;

        /// Length specifications accepted by [`vec`].
        pub trait IntoSizeRange {
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.random_range(self.start..self.end)
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.random_range(*self.start()..=*self.end())
            }
        }

        /// Strategy for a `Vec` of values drawn from `element`.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property test. Without shrinking there is nothing to
/// report beyond the failure itself, so this is `assert!` with the
/// proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::config::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 1u64..10, b in 0usize..=3) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 3, "b={b}");
        }

        #[test]
        fn vec_and_oneof(xs in prop::collection::vec(prop_oneof![Just(0u8), Just(1u8)], 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x <= 1));
        }

        #[test]
        fn prop_map_applies(y in (0u64..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 10);
        }
    }
}
