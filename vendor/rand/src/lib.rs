//! Offline stand-in for `rand`, providing the rand-0.9-style surface
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and `RngExt::random_range`. The generator is SplitMix64 — not
//! cryptographic, but deterministic, seedable, and well distributed,
//! which is all the schedulers and stress tests need.

/// Core trait: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods on any `RngCore` (the rand-0.9 `Rng` analogue).
pub trait RngExt: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoUniformRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample_inclusive(self, lo, hi_inclusive)
    }

    /// Uniform `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept for code written against the classic `rand::Rng` name.
pub use RngExt as Rng;

/// Types samplable uniformly from an inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Scale `v` toward `lo` by `factor ∈ [0, 1]` (0 = `lo`, 1 = `v`) —
    /// the primitive the vendored proptest's shrinking is built on.
    fn shrink_toward(lo: Self, v: Self, factor: f64) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain: any draw is uniform.
                    let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    return draw as $t;
                }
                // Rejection sampling over u128 draws to avoid modulo bias.
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if draw <= zone {
                        return (lo as u128 + draw % span) as $t;
                    }
                }
            }

            fn shrink_toward(lo: Self, v: Self, factor: f64) -> Self {
                debug_assert!(lo <= v, "shrink target below range start");
                // Exact at the endpoints: f64 rounding on offsets wider
                // than 2^53 must not break "factor 1.0 reproduces the
                // sample byte-for-byte" (the proptest contract).
                if factor >= 1.0 {
                    return v;
                }
                if factor <= 0.0 {
                    return lo;
                }
                let offset = (v as u128).wrapping_sub(lo as u128);
                let scaled = (offset as f64 * factor) as u128;
                (lo as u128 + scaled.min(offset)) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let ulo = (lo as $u) ^ (1 << (<$u>::BITS - 1));
                let uhi = (hi as $u) ^ (1 << (<$u>::BITS - 1));
                let v = <$u>::sample_inclusive(rng, ulo, uhi);
                (v ^ (1 << (<$u>::BITS - 1))) as $t
            }

            fn shrink_toward(lo: Self, v: Self, factor: f64) -> Self {
                let ulo = (lo as $u) ^ (1 << (<$u>::BITS - 1));
                let uv = (v as $u) ^ (1 << (<$u>::BITS - 1));
                let shrunk = <$u>::shrink_toward(ulo, uv, factor);
                (shrunk ^ (1 << (<$u>::BITS - 1))) as $t
            }
        }
    )*};
}

impl_sample_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    fn shrink_toward(lo: Self, v: Self, factor: f64) -> Self {
        if factor >= 1.0 {
            return v; // exact endpoint, like the integer impls
        }
        lo + (v - lo) * factor.clamp(0.0, 1.0)
    }
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait IntoUniformRange<T> {
    /// `(low, high_inclusive)` bounds of the range.
    fn bounds(&self) -> (T, T);
}

impl<T: SampleUniform + StepBack> IntoUniformRange<T> for core::ops::Range<T> {
    fn bounds(&self) -> (T, T) {
        (self.start, self.end.step_back())
    }
}

impl<T: SampleUniform> IntoUniformRange<T> for core::ops::RangeInclusive<T> {
    fn bounds(&self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Decrement by one unit, for converting `a..b` to inclusive bounds.
pub trait StepBack: Copy {
    fn step_back(self) -> Self;
}

macro_rules! impl_step_back {
    ($($t:ty),*) => {$(
        impl StepBack for $t {
            fn step_back(self) -> Self {
                self.checked_sub(1).expect("empty range in random_range")
            }
        }
    )*};
}

impl_step_back!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — the stand-in "standard" RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Same generator; the workspace only needs determinism, not speed
    /// tiers.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.random_range(0..=4);
            assert!(w <= 4);
            let s: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn shrink_toward_is_exact_at_the_endpoints() {
        // Wider than 2^53: f64 cannot represent the offset exactly, so
        // the endpoints must short-circuit.
        let v = (1u64 << 54) + 1;
        assert_eq!(u64::shrink_toward(0, v, 1.0), v);
        assert_eq!(u64::shrink_toward(0, v, 0.0), 0);
        assert_eq!(u64::shrink_toward(5, 5, 0.5), 5);
        assert_eq!(i64::shrink_toward(-10, 10, 1.0), 10);
        assert_eq!(i64::shrink_toward(-10, 10, 0.0), -10);
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
